"""RR-set statistics: EPS, EPT and the Lemma 3 identity.

The paper's complexity analysis is driven by two expectations:

* **EPS** — the expected RR-set *size*.  Lemma 3 shows
  ``EPS = (1/n) * sum_v sigma({v})``: the average singleton spread.
* **EPT** — the expected number of edges examined while generating one RR
  set, ``E[w(R)]``, which dominates generation time.

:func:`empirical_eps` / :func:`empirical_ept` estimate the two from drawn
samples; :func:`lemma3_check` compares empirical EPS against the
Monte-Carlo average singleton spread.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..diffusion.base import DiffusionModel
from ..diffusion.spread import singleton_spreads
from ..graphs.digraph import DirectedGraph
from .rrset import RRSample, RRSampler

__all__ = [
    "empirical_eps",
    "empirical_ept",
    "RRSetStatistics",
    "collect_statistics",
    "lemma3_check",
]


def empirical_eps(samples: Sequence[RRSample]) -> float:
    """Mean RR-set size of the samples."""
    if not samples:
        raise ValueError("need at least one sample")
    return float(np.mean([len(sample) for sample in samples]))


def empirical_ept(samples: Sequence[RRSample]) -> float:
    """Mean number of edges examined per sample."""
    if not samples:
        raise ValueError("need at least one sample")
    return float(np.mean([sample.edges_examined for sample in samples]))


@dataclass(frozen=True)
class RRSetStatistics:
    """Summary statistics of a batch of RR sets (Table IV columns)."""

    num_sets: int
    total_size: int
    eps: float
    ept: float
    max_size: int

    @classmethod
    def from_samples(cls, samples: Sequence[RRSample]) -> "RRSetStatistics":
        sizes = np.asarray([len(sample) for sample in samples], dtype=np.int64)
        edges = np.asarray([sample.edges_examined for sample in samples], dtype=np.int64)
        return cls(
            num_sets=len(samples),
            total_size=int(sizes.sum()),
            eps=float(sizes.mean()),
            ept=float(edges.mean()),
            max_size=int(sizes.max()),
        )

    @classmethod
    def from_batch(cls, batch) -> "RRSetStatistics":
        """Summarise a :class:`~repro.ris.rrset.FlatBatch` directly.

        Works entirely on the CSR arrays — the batch-sampler counterpart
        of :meth:`from_samples`, with identical numbers for matching
        draws.
        """
        if batch.count == 0:
            raise ValueError("need at least one RR set in the batch")
        sizes = np.diff(batch.offsets)
        return cls(
            num_sets=batch.count,
            total_size=int(sizes.sum()),
            eps=float(sizes.mean()),
            ept=float(batch.edges_examined.mean()),
            max_size=int(sizes.max()),
        )

    @classmethod
    def from_collection(cls, collection) -> "RRSetStatistics":
        """Summarise a stored collection (either backend).

        A :class:`~repro.ris.flat.FlatRRCollection` is summarised from
        its offsets array without touching individual sets; the reference
        store is walked once.  Stores keep only the aggregate
        ``total_edges_examined``, so EPT is the stored mean.
        """
        if collection.num_sets == 0:
            raise ValueError("need at least one stored RR set")
        offsets = getattr(collection, "offsets", None)
        if offsets is not None:
            sizes = np.diff(offsets)
        else:
            sizes = np.fromiter(
                (nodes.size for nodes in collection),
                dtype=np.int64,
                count=collection.num_sets,
            )
        return cls(
            num_sets=collection.num_sets,
            total_size=int(sizes.sum()),
            eps=float(sizes.mean()),
            ept=collection.total_edges_examined / collection.num_sets,
            max_size=int(sizes.max()),
        )


def collect_statistics(
    sampler: RRSampler,
    count: int,
    rng: np.random.Generator,
) -> RRSetStatistics:
    """Draw ``count`` RR sets and summarise them."""
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    return RRSetStatistics.from_samples(sampler.sample_many(count, rng))


def lemma3_check(
    graph: DirectedGraph,
    sampler: RRSampler,
    model: DiffusionModel,
    num_rr_sets: int,
    num_mc_samples: int,
    rng: np.random.Generator,
) -> tuple[float, float]:
    """Return ``(empirical EPS, MC average singleton spread)``.

    Lemma 3 says the two agree in expectation; tests assert they match
    within sampling noise.
    """
    samples = sampler.sample_many(num_rr_sets, rng)
    eps = empirical_eps(samples)
    spreads = singleton_spreads(graph, model, num_mc_samples, rng)
    return eps, float(spreads.mean())
