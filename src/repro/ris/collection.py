"""Per-machine store of RR sets with an inverted node index.

In the distributed setting every machine keeps its own
:class:`RRCollection` ``R_i`` (the paper's notation).  The collection is
append-only — DIIMM grows it in waves — and maintains the inverted index
``I_i(v) = { j : v in R_{i,j} }`` incrementally, which is exactly the
lookup NEWGREEDI's map stage needs when a new seed ``u`` is chosen.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List

import numpy as np

from .rrset import RRSample

__all__ = ["RRCollection"]


class RRCollection:
    """An append-only collection of RR sets plus its inverted index.

    Parameters
    ----------
    num_nodes:
        Number of graph nodes ``n`` (bounds the node ids that may appear).
    """

    def __init__(self, num_nodes: int) -> None:
        if num_nodes <= 0:
            raise ValueError(f"num_nodes must be positive, got {num_nodes}")
        self._num_nodes = num_nodes
        self._sets: List[np.ndarray] = []
        self._index: Dict[int, List[int]] = {}
        self._total_size = 0
        self._total_edges_examined = 0

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, sample: RRSample) -> int:
        """Append one RR set; returns its index within this collection.

        Raises :class:`ValueError` on node ids outside ``[0, num_nodes)``
        — an out-of-range id would otherwise silently corrupt every
        coverage count derived from the inverted index.
        """
        idx = len(self._sets)
        nodes = sample.nodes
        if nodes.size and (int(nodes.min()) < 0 or int(nodes.max()) >= self._num_nodes):
            raise ValueError(
                f"RR set contains node ids outside [0, {self._num_nodes})"
            )
        self._sets.append(nodes)
        for node in nodes:
            self._index.setdefault(int(node), []).append(idx)
        self._total_size += int(nodes.size)
        self._total_edges_examined += sample.edges_examined
        return idx

    def extend(self, samples: Iterable[RRSample]) -> None:
        """Append many RR sets."""
        for sample in samples:
            self.add(sample)

    # ------------------------------------------------------------------
    # Read access
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    @property
    def num_sets(self) -> int:
        """Number of RR sets stored (``|R_i|``)."""
        return len(self._sets)

    @property
    def total_size(self) -> int:
        """Sum of RR-set sizes (drives NEWGREEDI's per-machine work)."""
        return self._total_size

    @property
    def total_edges_examined(self) -> int:
        """Sum of ``w(R)`` over stored sets (drives generation time)."""
        return self._total_edges_examined

    def get(self, idx: int) -> np.ndarray:
        """Node array of the ``idx``-th RR set."""
        return self._sets[idx]

    def __len__(self) -> int:
        return len(self._sets)

    def __iter__(self) -> Iterator[np.ndarray]:
        return iter(self._sets)

    def sets_containing(self, node: int) -> List[int]:
        """Indices of RR sets that contain ``node`` (``I_i(node)``)."""
        return self._index.get(int(node), [])

    def coverage_counts(self, start: int = 0) -> np.ndarray:
        """Per-node count of RR sets (with index >= ``start``) containing it.

        ``start`` lets DIIMM compute coverage deltas over only the newly
        generated sets, the traffic-saving variant of Section III-C.
        """
        counts = np.zeros(self._num_nodes, dtype=np.int64)
        for nodes in self._sets[start:]:
            counts[nodes] += 1
        return counts

    def coverage_of(self, seeds: Iterable[int]) -> int:
        """Number of stored RR sets covered by the seed set."""
        covered: set[int] = set()
        for seed in set(seeds):
            covered.update(self.sets_containing(seed))
        return len(covered)

    def __repr__(self) -> str:
        return (
            f"RRCollection(num_sets={self.num_sets}, total_size={self._total_size}, "
            f"num_nodes={self._num_nodes})"
        )
