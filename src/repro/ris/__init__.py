"""Reverse influence sampling: RR-set samplers, collections and statistics."""

from .collection import RRCollection
from .flat import FlatPrefixView, FlatRRCollection, append_batch, make_collection
from .ic_sampler import ICReverseBFSSampler
from .lt_sampler import LTReverseWalkSampler
from .rrset import (
    FlatBatch,
    RRSample,
    RRSampler,
    concat_batches,
    pack_samples,
    per_set_rng,
    sample_set_range,
)
from .stats import (
    RRSetStatistics,
    collect_statistics,
    empirical_eps,
    empirical_ept,
    lemma3_check,
)
from .serialization import (
    FORMAT_MAGIC,
    FORMAT_VERSION,
    MESSAGE_MAGIC,
    MESSAGE_VERSION,
    CheckpointFormatError,
    PayloadCorruptionError,
    load_collection,
    load_flat_collection,
    pack_message,
    save_collection,
    unpack_message,
)
from .subsim import SubsimSampler
from .triggering_sampler import TriggeringRRSampler
from .vectorized import (
    DEFAULT_BLOCK,
    VectorizedICSampler,
    VectorizedLTSampler,
    VectorizedTriggeringSampler,
)

__all__ = [
    "FlatBatch",
    "RRSample",
    "RRSampler",
    "pack_samples",
    "per_set_rng",
    "sample_set_range",
    "concat_batches",
    "append_batch",
    "ICReverseBFSSampler",
    "LTReverseWalkSampler",
    "SubsimSampler",
    "RRCollection",
    "FlatRRCollection",
    "FlatPrefixView",
    "make_collection",
    "RRSetStatistics",
    "collect_statistics",
    "empirical_eps",
    "empirical_ept",
    "lemma3_check",
    "make_sampler",
    "save_collection",
    "load_collection",
    "load_flat_collection",
    "FORMAT_MAGIC",
    "FORMAT_VERSION",
    "MESSAGE_MAGIC",
    "MESSAGE_VERSION",
    "CheckpointFormatError",
    "PayloadCorruptionError",
    "pack_message",
    "unpack_message",
    "TriggeringRRSampler",
    "DEFAULT_BLOCK",
    "VectorizedICSampler",
    "VectorizedLTSampler",
    "VectorizedTriggeringSampler",
]


def make_sampler(graph, model: str = "ic", method: str = "bfs") -> RRSampler:
    """Factory resolving ``(model, method)`` to a concrete sampler.

    Parameters
    ----------
    graph:
        The weighted :class:`~repro.graphs.digraph.DirectedGraph`.
    model:
        ``"ic"`` or ``"lt"``.
    method:
        ``"bfs"`` (plain reverse BFS / walk), ``"subsim"`` (IC only), or
        ``"vectorized"`` (blocked frontier kernels advancing many RR
        sets per NumPy call; see :mod:`repro.ris.vectorized`).
    """
    model_key, method_key = model.lower(), method.lower()
    if method_key == "vectorized":
        from ..graphs.digraph import VersionedGraph

        if isinstance(graph, VersionedGraph):
            raise ValueError(
                "the vectorized kernels read base CSR arrays only and cannot "
                "traverse a VersionedGraph overlay; call graph.compact() (or "
                "rebase()) and sample the compacted graph instead"
            )
    if model_key == "lt":
        if method_key == "subsim":
            raise ValueError("SUBSIM subset sampling applies to the IC model only")
        if method_key == "vectorized":
            return VectorizedLTSampler(graph)
        if method_key == "bfs":
            return LTReverseWalkSampler(graph)
        raise ValueError(f"unknown sampling method {method!r}")
    if model_key == "ic":
        if method_key == "subsim":
            return SubsimSampler(graph)
        if method_key == "vectorized":
            return VectorizedICSampler(graph)
        if method_key == "bfs":
            return ICReverseBFSSampler(graph)
        raise ValueError(f"unknown sampling method {method!r}")
    raise ValueError(f"unknown diffusion model {model!r}")
