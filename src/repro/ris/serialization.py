"""Persistence for RR collections.

DIIMM on large inputs spends nearly all its time generating RR sets;
checkpointing a machine's collection lets a run resume (or lets seed
selection be replayed with different ``k``) without regenerating.  The
format packs all RR sets into two flat arrays (values + offsets) — the
very layout :class:`~repro.ris.flat.FlatRRCollection` keeps in memory, so
saving or loading a flat collection is a handful of numpy calls with no
per-set loop at all; the reference :class:`RRCollection` takes the same
format through one concatenate/slice pass.

Every checkpoint carries a magic marker plus a format version
(:data:`FORMAT_MAGIC` / :data:`FORMAT_VERSION`).  Loading verifies both
before touching any array, so a stale, truncated or foreign ``.npz``
fails with a :class:`CheckpointFormatError` that names the file and the
problem instead of an opaque numpy/zipfile traceback.

The same framing discipline extends to *in-flight* worker payloads: the
multiprocessing executor ships every generation batch as a
:func:`pack_message` frame — magic, version, body length and a CRC32
checksum ahead of the pickled body — and :func:`unpack_message` verifies
all four before unpickling, so a corrupted or truncated payload surfaces
as a typed :class:`PayloadCorruptionError` the retry machinery can
recover from instead of a pickle crash or, worse, silently wrong RR
sets.

For *streaming* transports (the socket executor's TCP connections) the
frame also acts as the record delimiter: :func:`read_frame` pulls one
frame off a ``recv``-style callable, tolerating arbitrarily chunked
delivery, distinguishing a clean end-of-stream at a frame boundary from
mid-frame truncation (:class:`FrameTruncatedError`) and refusing
oversized length claims (:class:`FrameTooLargeError`) *before*
allocating the body.
"""

from __future__ import annotations

import os
import pickle
import struct
import zipfile
import zlib
from typing import Any

import numpy as np

from .collection import RRCollection
from .flat import FlatRRCollection
from .rrset import RRSample

__all__ = [
    "FORMAT_MAGIC",
    "FORMAT_VERSION",
    "MESSAGE_MAGIC",
    "MESSAGE_VERSION",
    "MESSAGE_HEADER_BYTES",
    "DEFAULT_MAX_FRAME_BODY",
    "CheckpointFormatError",
    "PayloadCorruptionError",
    "FrameTruncatedError",
    "FrameTooLargeError",
    "pack_message",
    "unpack_message",
    "read_frame",
    "save_collection",
    "load_collection",
    "load_flat_collection",
]

#: Identifies a file as an RR-collection checkpoint.
FORMAT_MAGIC = "repro-rr-collection"
#: Current on-disk layout version.  Bump when the array schema changes.
FORMAT_VERSION = 1


class CheckpointFormatError(ValueError):
    """A checkpoint file is unreadable, foreign, or of another version."""


#: Identifies a byte string as a framed worker payload.
MESSAGE_MAGIC = b"RPRO"
#: Current wire-frame version.  Bump when the frame layout changes.
MESSAGE_VERSION = 1
#: Frame header: magic (4s), version (H), body length (Q), CRC32 (I).
_MESSAGE_HEADER = struct.Struct("<4sHQI")
MESSAGE_HEADER_BYTES = _MESSAGE_HEADER.size


class PayloadCorruptionError(RuntimeError):
    """A framed payload failed its magic/version/length/CRC32 check."""


class FrameTruncatedError(PayloadCorruptionError):
    """A stream ended mid-frame (inside a header or a promised body)."""


class FrameTooLargeError(PayloadCorruptionError):
    """A frame header promised a body above the caller's size limit."""


#: Largest frame body :func:`read_frame` accepts by default (1 GiB).  A
#: corrupted length field would otherwise let one bad frame demand an
#: arbitrary allocation before the CRC could catch it.
DEFAULT_MAX_FRAME_BODY = 1 << 30


def pack_message(payload: Any) -> bytes:
    """Frame ``payload`` for transport: header + CRC32 + pickled body.

    The frame is what the multiprocessing executor's workers return for
    every generation batch; :func:`unpack_message` refuses to unpickle a
    body whose checksum does not match, which is how injected (or real)
    payload corruption is detected and retried deterministically.
    """
    body = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    header = _MESSAGE_HEADER.pack(
        MESSAGE_MAGIC, MESSAGE_VERSION, len(body), zlib.crc32(body)
    )
    return header + body


def unpack_message(frame: bytes) -> Any:
    """Verify a :func:`pack_message` frame and return its payload.

    Raises :class:`PayloadCorruptionError` naming the failing check —
    truncated header, foreign magic, unknown version, short body or
    checksum mismatch — before any unpickling happens.
    """
    if len(frame) < MESSAGE_HEADER_BYTES:
        raise PayloadCorruptionError(
            f"payload truncated: {len(frame)} bytes is shorter than the "
            f"{MESSAGE_HEADER_BYTES}-byte frame header"
        )
    magic, version, length, crc = _MESSAGE_HEADER.unpack_from(frame)
    if magic != MESSAGE_MAGIC:
        raise PayloadCorruptionError(
            f"payload does not start with the {MESSAGE_MAGIC!r} frame magic"
        )
    if version != MESSAGE_VERSION:
        raise PayloadCorruptionError(
            f"payload uses frame version {version}, but this build reads "
            f"version {MESSAGE_VERSION}"
        )
    body = frame[MESSAGE_HEADER_BYTES:]
    if len(body) != length:
        raise PayloadCorruptionError(
            f"payload body is {len(body)} bytes but the header promised {length}"
        )
    actual = zlib.crc32(body)
    if actual != crc:
        raise PayloadCorruptionError(
            f"payload checksum mismatch: header says {crc:#010x}, "
            f"body hashes to {actual:#010x}"
        )
    return pickle.loads(body)


def _recv_exactly(recv, count: int, *, context: str, got: int = 0) -> bytes:
    """Accumulate exactly ``count`` bytes from ``recv`` or raise.

    ``recv`` follows the socket convention: called with a maximum size,
    returns up to that many bytes, returns ``b""`` only at end of
    stream.  ``got`` seeds the truncation message with bytes already
    consumed (the header, when the body goes missing).
    """
    parts: list[bytes] = []
    remaining = count
    while remaining:
        chunk = recv(remaining)
        if not chunk:
            raise FrameTruncatedError(
                f"stream ended mid-frame: expected {count + got} bytes "
                f"of {context}, got {count - remaining + got}"
            )
        parts.append(chunk)
        remaining -= len(chunk)
    return b"".join(parts)


def read_frame(
    recv,
    *,
    max_body: int = DEFAULT_MAX_FRAME_BODY,
    eof_ok: bool = True,
) -> Any:
    """Read one :func:`pack_message` frame from a byte stream.

    ``recv`` is a socket-style callable: ``recv(n)`` returns between 1
    and ``n`` bytes, or ``b""`` once the stream is exhausted.  Partial
    delivery is handled by looping, so the frame may arrive in
    arbitrarily small chunks.

    Returns the unpickled payload, or ``None`` when the stream ends
    cleanly *between* frames and ``eof_ok`` is true (with ``eof_ok``
    false that raises :class:`FrameTruncatedError` too).  A stream
    ending *inside* a frame always raises :class:`FrameTruncatedError`;
    a header promising more than ``max_body`` bytes raises
    :class:`FrameTooLargeError` before any body is read; magic, version
    and CRC32 violations raise :class:`PayloadCorruptionError` exactly
    as :func:`unpack_message` would — but only after the promised body
    has been drained, so the stream stays aligned on the next frame.
    """
    first = recv(MESSAGE_HEADER_BYTES)
    if not first:
        if eof_ok:
            return None
        raise FrameTruncatedError("stream ended before a frame header")
    header = first
    if len(header) < MESSAGE_HEADER_BYTES:
        header += _recv_exactly(
            recv,
            MESSAGE_HEADER_BYTES - len(header),
            context="frame header",
            got=len(header),
        )
    magic, version, length, _crc = _MESSAGE_HEADER.unpack(header)
    if magic != MESSAGE_MAGIC:
        raise PayloadCorruptionError(
            f"stream does not start with the {MESSAGE_MAGIC!r} frame magic; "
            "refusing to resynchronize"
        )
    if version != MESSAGE_VERSION:
        raise PayloadCorruptionError(
            f"frame uses version {version}, but this build reads "
            f"version {MESSAGE_VERSION}"
        )
    if length > max_body:
        raise FrameTooLargeError(
            f"frame header promises a {length}-byte body, above the "
            f"{max_body}-byte limit; refusing the allocation"
        )
    body = _recv_exactly(recv, length, context="frame body")
    # Re-checks magic/version redundantly but keeps one source of truth
    # for the CRC comparison and the unpickle step.
    return unpack_message(header + body)


def save_collection(
    collection: RRCollection | FlatRRCollection, path: str | os.PathLike
) -> None:
    """Write a collection (and its accounting) to a compressed file.

    Accepts either store flavour; a flat collection's CSR arrays are
    written as-is.
    """
    if isinstance(collection, FlatRRCollection):
        values = collection.nodes.astype(np.int32, copy=False)
        offsets = collection.offsets.astype(np.int64, copy=False)
    else:
        sizes = np.asarray([nodes.size for nodes in collection], dtype=np.int64)
        offsets = np.zeros(sizes.size + 1, dtype=np.int64)
        np.cumsum(sizes, out=offsets[1:])
        if collection.num_sets:
            values = np.concatenate(list(collection)).astype(np.int32)
        else:
            values = np.zeros(0, dtype=np.int32)
    np.savez_compressed(
        path,
        magic=np.asarray(FORMAT_MAGIC),
        version=np.int64(FORMAT_VERSION),
        num_nodes=np.int64(collection.num_nodes),
        offsets=offsets,
        values=values,
        total_edges_examined=np.int64(collection.total_edges_examined),
    )


def _read_arrays(path: str | os.PathLike):
    try:
        data = np.load(path)
    except (OSError, ValueError, EOFError, zipfile.BadZipFile) as exc:
        raise CheckpointFormatError(
            f"{os.fspath(path)!r} is not a readable RR-collection checkpoint "
            f"(corrupt or truncated file): {exc}"
        ) from exc
    with data:
        if "magic" not in data.files or str(data["magic"]) != FORMAT_MAGIC:
            raise CheckpointFormatError(
                f"{os.fspath(path)!r} is not an RR-collection checkpoint "
                f"(missing {FORMAT_MAGIC!r} header); refusing to guess at its layout"
            )
        version = int(data["version"])
        if version != FORMAT_VERSION:
            raise CheckpointFormatError(
                f"{os.fspath(path)!r} uses checkpoint format version {version}, "
                f"but this build reads version {FORMAT_VERSION}; "
                "regenerate the checkpoint with the matching release"
            )
        return (
            int(data["num_nodes"]),
            data["offsets"],
            data["values"],
            int(data["total_edges_examined"]),
        )


def load_collection(path: str | os.PathLike) -> RRCollection:
    """Load a reference collection written by :func:`save_collection`.

    The per-sample ``edges_examined`` breakdown and the root identities
    are not stored: coverage-based seed selection only consumes RR-set
    *membership*, so loaded samples carry an even edge attribution (the
    aggregate statistics are preserved) and report their smallest node as
    the root.
    """
    num_nodes, offsets, values, total_edges = _read_arrays(path)
    collection = RRCollection(num_nodes)
    count = offsets.size - 1
    base, extra = divmod(total_edges, count) if count else (0, 0)
    for idx in range(count):
        nodes = values[offsets[idx] : offsets[idx + 1]]
        edges = base + (1 if idx < extra else 0)
        collection.add(
            RRSample(
                nodes=nodes.copy(),
                root=int(nodes[0]) if nodes.size else 0,
                edges_examined=edges,
            )
        )
    return collection


def load_flat_collection(path: str | os.PathLike) -> FlatRRCollection:
    """Load a checkpoint straight into a :class:`FlatRRCollection`.

    The on-disk values/offsets pair *is* the flat store's CSR layout, so
    this path performs no per-set work; only the inverted index is
    rebuilt on first read.
    """
    num_nodes, offsets, values, total_edges = _read_arrays(path)
    collection = FlatRRCollection(num_nodes)
    collection.append_arrays(values, offsets, edges_examined=total_edges)
    return collection
