"""Persistence for RR collections.

DIIMM on large inputs spends nearly all its time generating RR sets;
checkpointing a machine's collection lets a run resume (or lets seed
selection be replayed with different ``k``) without regenerating.  The
format packs all RR sets into two flat arrays (values + offsets), the
same layout the CSR graph uses, so save/load is a handful of numpy calls.
"""

from __future__ import annotations

import os

import numpy as np

from .collection import RRCollection
from .rrset import RRSample

__all__ = ["save_collection", "load_collection"]


def save_collection(collection: RRCollection, path: str | os.PathLike) -> None:
    """Write a collection (and its accounting) to a compressed file."""
    sizes = np.asarray([nodes.size for nodes in collection], dtype=np.int64)
    offsets = np.zeros(sizes.size + 1, dtype=np.int64)
    np.cumsum(sizes, out=offsets[1:])
    if collection.num_sets:
        values = np.concatenate(list(collection)).astype(np.int32)
    else:
        values = np.zeros(0, dtype=np.int32)
    np.savez_compressed(
        path,
        num_nodes=np.int64(collection.num_nodes),
        offsets=offsets,
        values=values,
        total_edges_examined=np.int64(collection.total_edges_examined),
    )


def load_collection(path: str | os.PathLike) -> RRCollection:
    """Load a collection written by :func:`save_collection`.

    The per-sample ``edges_examined`` breakdown and the root identities
    are not stored: coverage-based seed selection only consumes RR-set
    *membership*, so loaded samples carry an even edge attribution (the
    aggregate statistics are preserved) and report their smallest node as
    the root.
    """
    with np.load(path) as data:
        num_nodes = int(data["num_nodes"])
        offsets = data["offsets"]
        values = data["values"]
        total_edges = int(data["total_edges_examined"])
    collection = RRCollection(num_nodes)
    count = offsets.size - 1
    base, extra = divmod(total_edges, count) if count else (0, 0)
    for idx in range(count):
        nodes = values[offsets[idx] : offsets[idx + 1]]
        edges = base + (1 if idx < extra else 0)
        collection.add(
            RRSample(
                nodes=nodes.copy(),
                root=int(nodes[0]) if nodes.size else 0,
                edges_examined=edges,
            )
        )
    return collection
