"""CSR-layout RR-set store: the flat coverage backend's data structure.

:class:`FlatRRCollection` keeps every RR set of a machine in two flat
arrays — one ``int32`` ``nodes`` array concatenating all set contents and
one ``int64`` ``offsets`` array delimiting them — exactly the layout the
CSR graph and the checkpoint format already use.  The inverted index
``I_i(v)`` is itself stored in CSR form (``inv_sets`` / ``inv_offsets``),
built in one shot with a stable ``np.argsort`` over the nodes array plus
an ``np.bincount`` prefix sum, instead of the reference
:class:`~repro.ris.collection.RRCollection`'s per-node Python lists.

The collection stays append-only like the reference store: DIIMM grows
``R_i`` in waves, so appends are buffered and both CSR structures are
rebuilt lazily on the next read.  With ``W`` waves over ``T`` total
incidences the rebuild work is ``O(W * T)`` — negligible next to
generation — and every read between waves hits pure NumPy arrays, which
is what lets :mod:`repro.coverage.kernel` replace the per-element Python
loops of the greedy hot path with fancy indexing.

Ordering invariants (relied on by the exactness tests):

* ``get(j)`` returns the ``j``-th RR set's nodes in their stored
  (sorted) order, identical to the reference store;
* ``sets_containing(v)`` returns element indices in ascending order,
  matching the insertion-ordered lists of the reference inverted index —
  the stable sort ties element ids back in ascending order.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List

import numpy as np

from .collection import RRCollection
from .rrset import FlatBatch, RRSample

__all__ = [
    "FlatRRCollection",
    "FlatPrefixView",
    "MAX_NODES",
    "append_batch",
    "make_collection",
    "gather_rows",
]

#: Largest graph the flat store can index: node ids are kept as ``int32``
#: (halving memory and wire traffic versus ``int64``), so ids must lie in
#: ``[0, 2**31)``.  Everything *per-collection* is already ``int64``
#: (offsets, inverted index), so set counts and total sizes are not
#: limited — only the node-id width is.
MAX_NODES = 1 << 31


def gather_rows(values: np.ndarray, offsets: np.ndarray, rows: np.ndarray) -> np.ndarray:
    """Concatenated CSR rows ``values[offsets[r]:offsets[r+1]] for r in rows``.

    The standard vectorized multi-slice gather: repeat each row start over
    its length and add the within-row ramp.  Returns an empty array when
    ``rows`` is empty or all selected rows are.
    """
    rows = np.asarray(rows)
    if rows.size == 0:
        return values[:0]
    starts = offsets[rows]
    lengths = offsets[rows + 1] - starts
    total = int(lengths.sum())
    if total == 0:
        return values[:0]
    ends = np.cumsum(lengths)
    ramp = np.arange(total, dtype=np.int64) - np.repeat(ends - lengths, lengths)
    return values[np.repeat(starts, lengths) + ramp]


class FlatRRCollection:
    """An append-only RR-set store over flat CSR arrays.

    Implements the same read protocol as :class:`RRCollection`
    (``num_nodes`` / ``num_sets`` / ``total_size`` / ``get`` /
    ``sets_containing`` / ``coverage_counts`` / ``coverage_of``), so every
    coverage algorithm accepts either store; the flat kernel additionally
    reads the raw arrays via :attr:`nodes`, :attr:`offsets`,
    :attr:`inv_sets` and :attr:`inv_offsets`.
    """

    def __init__(self, num_nodes: int) -> None:
        if num_nodes <= 0:
            raise ValueError(f"num_nodes must be positive, got {num_nodes}")
        # Checked before any allocation: past this limit the int32 casts
        # in _validate would silently wrap node ids into negatives.
        if num_nodes > MAX_NODES:
            raise ValueError(
                f"num_nodes must be <= {MAX_NODES} (node ids are stored as "
                f"int32 in the flat CSR layout), got {num_nodes}"
            )
        self._num_nodes = num_nodes
        self._nodes = np.zeros(0, dtype=np.int32)
        self._offsets = np.zeros(1, dtype=np.int64)
        self._inv_sets = np.zeros(0, dtype=np.int64)
        self._inv_offsets = np.zeros(num_nodes + 1, dtype=np.int64)
        # Appends land here until the next read rebuilds the CSR arrays.
        self._pending: List[np.ndarray] = []
        self._pending_edges: List[np.ndarray] = []
        # Cumulative per-set edges-examined: entry j is the total over the
        # first j sets, so any prefix's generation work is one lookup.
        self._edges_cumsum = np.zeros(1, dtype=np.int64)
        self._num_sets = 0
        self._total_size = 0
        self._total_edges_examined = 0

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def _validate(self, nodes: np.ndarray) -> np.ndarray:
        nodes = np.asarray(nodes)
        if nodes.size and (int(nodes.min()) < 0 or int(nodes.max()) >= self._num_nodes):
            raise ValueError(
                f"RR set contains node ids outside [0, {self._num_nodes})"
            )
        return nodes.astype(np.int32, copy=False)

    @staticmethod
    def _per_set_edges(edges_examined, count: int) -> np.ndarray:
        """Per-set edge counts for ``count`` sets.

        Accepts a per-set array (exact attribution) or an aggregate int,
        which is spread evenly — the same policy
        :meth:`to_collection` and the checkpoint loader already apply
        when only the aggregate survived.
        """
        if np.ndim(edges_examined) > 0:
            per_set = np.asarray(edges_examined, dtype=np.int64)
            if per_set.size != count:
                raise ValueError(
                    f"edges_examined has {per_set.size} entries for {count} sets"
                )
            return per_set
        total = int(edges_examined)
        if count == 0:
            return np.zeros(0, dtype=np.int64)
        base, extra = divmod(total, count)
        per_set = np.full(count, base, dtype=np.int64)
        per_set[:extra] += 1
        return per_set

    def add(self, sample: RRSample) -> int:
        """Append one RR set; returns its index within this collection."""
        nodes = self._validate(sample.nodes)
        idx = self._num_sets
        self._pending.append(nodes)
        self._pending_edges.append(
            np.asarray([sample.edges_examined], dtype=np.int64)
        )
        self._num_sets += 1
        self._total_size += int(nodes.size)
        self._total_edges_examined += sample.edges_examined
        return idx

    def extend(self, samples: Iterable[RRSample]) -> None:
        """Append many RR sets (one DIIMM generation wave)."""
        for sample in samples:
            self.add(sample)

    def append_arrays(
        self,
        nodes: np.ndarray,
        offsets: np.ndarray,
        edges_examined=0,
    ) -> None:
        """Append a whole flat batch (e.g. a worker's wave) in one call.

        ``edges_examined`` is either the wave's aggregate (an int, spread
        evenly over its sets) or a per-set ``int64`` array of length
        ``offsets.size - 1`` (exact attribution, as
        :attr:`FlatBatch.edges_examined <repro.ris.rrset.FlatBatch>`
        carries it).
        """
        offsets = np.asarray(offsets, dtype=np.int64)
        if offsets.size == 0 or offsets[0] != 0 or offsets[-1] != np.asarray(nodes).size:
            raise ValueError("offsets must start at 0 and end at nodes.size")
        nodes = self._validate(nodes)
        count = offsets.size - 1
        per_set = self._per_set_edges(edges_examined, count)
        for idx in range(count):
            self._pending.append(nodes[offsets[idx] : offsets[idx + 1]])
        self._pending_edges.append(per_set)
        self._num_sets += count
        self._total_size += int(nodes.size)
        # The aggregate keeps its historical semantics even for an empty
        # batch carrying a scalar count; per-set attribution needs sets.
        if np.ndim(edges_examined) > 0:
            self._total_edges_examined += int(per_set.sum())
        else:
            self._total_edges_examined += int(edges_examined)

    def _materialize(self) -> None:
        """Fold pending appends into the CSR arrays and rebuild the index."""
        if not self._pending:
            self._pending_edges = [e for e in self._pending_edges if e.size]
            return
        sizes = np.fromiter(
            (arr.size for arr in self._pending), dtype=np.int64, count=len(self._pending)
        )
        self._nodes = np.concatenate([self._nodes, *self._pending])
        new_offsets = self._offsets[-1] + np.cumsum(sizes)
        self._offsets = np.concatenate([self._offsets, new_offsets])
        self._pending = []
        per_set_edges = np.concatenate(self._pending_edges)
        self._edges_cumsum = np.concatenate(
            [self._edges_cumsum, self._edges_cumsum[-1] + np.cumsum(per_set_edges)]
        )
        self._pending_edges = []
        # CSR inverted index: stable sort keeps element ids ascending
        # within each node bucket, matching the reference I_i(v) order.
        order = np.argsort(self._nodes, kind="stable")
        set_ids = np.repeat(
            np.arange(self._num_sets, dtype=np.int64), np.diff(self._offsets)
        )
        self._inv_sets = set_ids[order]
        counts = np.bincount(self._nodes, minlength=self._num_nodes)
        self._inv_offsets = np.zeros(self._num_nodes + 1, dtype=np.int64)
        np.cumsum(counts, out=self._inv_offsets[1:])

    # ------------------------------------------------------------------
    # Raw CSR access (the kernel's view)
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> np.ndarray:
        """Flat ``int32`` concatenation of every RR set's nodes."""
        self._materialize()
        return self._nodes

    @property
    def offsets(self) -> np.ndarray:
        """``int64`` array of length ``num_sets + 1`` delimiting the sets."""
        self._materialize()
        return self._offsets

    @property
    def inv_sets(self) -> np.ndarray:
        """Element ids of the CSR inverted index, grouped by node."""
        self._materialize()
        return self._inv_sets

    @property
    def inv_offsets(self) -> np.ndarray:
        """``int64`` array of length ``num_nodes + 1`` delimiting ``I_i(v)``."""
        self._materialize()
        return self._inv_offsets

    # ------------------------------------------------------------------
    # Store protocol (mirrors RRCollection)
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    @property
    def num_sets(self) -> int:
        """Number of RR sets stored (``|R_i|``)."""
        return self._num_sets

    @property
    def total_size(self) -> int:
        """Sum of RR-set sizes (drives NEWGREEDI's per-machine work)."""
        return self._total_size

    @property
    def total_edges_examined(self) -> int:
        """Sum of ``w(R)`` over stored sets (drives generation time)."""
        return self._total_edges_examined

    def edges_examined_upto(self, limit: int) -> int:
        """Edges examined generating the first ``limit`` RR sets.

        Exact where the sets arrived with per-set counts (sampler
        batches); evenly attributed where only a wave aggregate survived
        (checkpoint round-trips), mirroring :meth:`to_collection`.
        """
        self._materialize()
        if not 0 <= limit <= self._num_sets:
            raise ValueError(f"limit {limit} out of range [0, {self._num_sets}]")
        return int(self._edges_cumsum[limit])

    def get(self, idx: int) -> np.ndarray:
        """Node array (a view) of the ``idx``-th RR set."""
        self._materialize()
        if idx < 0:
            idx += self._num_sets
        if not 0 <= idx < self._num_sets:
            raise IndexError(f"set index {idx} out of range")
        return self._nodes[self._offsets[idx] : self._offsets[idx + 1]]

    def __len__(self) -> int:
        return self._num_sets

    def __iter__(self) -> Iterator[np.ndarray]:
        self._materialize()
        for idx in range(self._num_sets):
            yield self._nodes[self._offsets[idx] : self._offsets[idx + 1]]

    def sets_containing(self, node: int) -> np.ndarray:
        """Ascending element ids of RR sets containing ``node`` (``I_i(node)``)."""
        self._materialize()
        node = int(node)
        if not 0 <= node < self._num_nodes:
            return self._inv_sets[:0]
        return self._inv_sets[self._inv_offsets[node] : self._inv_offsets[node + 1]]

    def coverage_counts(self, start: int = 0) -> np.ndarray:
        """Per-node count of RR sets (with index >= ``start``) containing it."""
        self._materialize()
        lo = self._offsets[min(start, self._num_sets)]
        return np.bincount(self._nodes[lo:], minlength=self._num_nodes).astype(np.int64)

    def coverage_of(self, seeds: Iterable[int]) -> int:
        """Number of stored RR sets covered by the seed set."""
        self._materialize()
        seeds = np.unique(np.fromiter((int(s) for s in seeds), dtype=np.int64))
        seeds = seeds[(seeds >= 0) & (seeds < self._num_nodes)]
        elements = gather_rows(self._inv_sets, self._inv_offsets, seeds)
        return int(np.unique(elements).size)

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    @classmethod
    def from_store(cls, store) -> "FlatRRCollection":
        """Build from any object exposing the store read protocol.

        Accepts :class:`RRCollection`, :class:`CoverageInstance
        <repro.coverage.problem.CoverageInstance>` or another flat
        collection (copied).
        """
        flat = cls(store.num_nodes)
        for idx in range(store.num_sets):
            flat._pending.append(flat._validate(store.get(idx)))
        flat._num_sets = store.num_sets
        flat._total_size = store.total_size
        flat._total_edges_examined = int(getattr(store, "total_edges_examined", 0))
        flat._pending_edges.append(
            cls._per_set_edges(flat._total_edges_examined, store.num_sets)
        )
        return flat

    # Alias matching the reference store's name in the issue/docs.
    from_collection = from_store

    def to_collection(self) -> RRCollection:
        """Rebuild a reference :class:`RRCollection` with identical sets.

        Edges are attributed per set from the stored cumulative counts
        (exact for sampler-appended sets, evenly spread where only a wave
        aggregate survived); each sample reports its smallest node as
        root, since roots are not stored.
        """
        self._materialize()
        collection = RRCollection(self._num_nodes)
        per_set_edges = np.diff(self._edges_cumsum)
        for idx in range(self._num_sets):
            nodes = self._nodes[self._offsets[idx] : self._offsets[idx + 1]].copy()
            collection.add(
                RRSample(
                    nodes=nodes,
                    root=int(nodes[0]) if nodes.size else 0,
                    edges_examined=int(per_set_edges[idx]),
                )
            )
        return collection

    def __repr__(self) -> str:
        return (
            f"FlatRRCollection(num_sets={self._num_sets}, "
            f"total_size={self._total_size}, num_nodes={self._num_nodes})"
        )


class FlatPrefixView:
    """A read-only view of the first ``limit`` RR sets of a flat store.

    The warm-serving path (:mod:`repro.core.pool`) keeps one long-lived
    :class:`FlatRRCollection` per machine and answers each query against
    a *prefix* of it: because the per-set samplers' batch contract makes
    machine ``i``'s first ``c`` RR sets depend only on its RNG stream and
    ``c`` — never on how generation was batched into waves — the prefix
    is bit-identical to the collection a cold run of the same schedule
    would have built, and so is everything selected from it.

    The view implements the full store read protocol plus the raw-array
    surface the flat coverage kernel uses (:attr:`nodes`,
    :attr:`offsets`, :attr:`inv_sets`, :attr:`inv_offsets`), so greedy
    selection and NEWGREEDI run on a view unchanged.  ``nodes`` and
    ``offsets`` are zero-copy slices; the prefix inverted index is built
    lazily per distinct limit (one stable argsort over the prefix — the
    same work a cold run's per-round materialize does), or borrowed from
    the backing store when the view covers it entirely.

    Limits only grow (:meth:`set_limit`), mirroring the append-only
    store, and must never exceed the backing store's current size — the
    pool tops the store up *before* advancing any view.
    """

    def __init__(self, store: FlatRRCollection, limit: int = 0) -> None:
        self._store = store
        self._limit = 0
        self._inv_limit = -1
        self._inv_sets = np.zeros(0, dtype=np.int64)
        self._inv_offsets = np.zeros(store.num_nodes + 1, dtype=np.int64)
        self.set_limit(limit)

    @property
    def base(self) -> FlatRRCollection:
        """The backing (shared, append-only) collection."""
        return self._store

    @property
    def limit(self) -> int:
        return self._limit

    def set_limit(self, limit: int) -> None:
        """Advance the view to cover the first ``limit`` sets."""
        limit = int(limit)
        if limit < self._limit:
            raise ValueError(
                f"prefix views only grow: limit {limit} < current {self._limit}"
            )
        if limit > self._store.num_sets:
            raise ValueError(
                f"limit {limit} exceeds the backing store's "
                f"{self._store.num_sets} sets; top the pool up first"
            )
        self._limit = limit

    # -- raw CSR access (the kernel's view) -----------------------------
    @property
    def nodes(self) -> np.ndarray:
        return self._store.nodes[: self._store.offsets[self._limit]]

    @property
    def offsets(self) -> np.ndarray:
        return self._store.offsets[: self._limit + 1]

    def _prefix_index(self) -> None:
        if self._inv_limit == self._limit:
            return
        if self._limit == self._store.num_sets:
            # The view covers the whole store: borrow its index.  The
            # borrowed arrays stay valid even if the store grows later —
            # they describe exactly the first `limit` sets.
            self._inv_sets = self._store.inv_sets
            self._inv_offsets = self._store.inv_offsets
        else:
            nodes = self.nodes
            order = np.argsort(nodes, kind="stable")
            set_ids = np.repeat(
                np.arange(self._limit, dtype=np.int64), np.diff(self.offsets)
            )
            self._inv_sets = set_ids[order]
            counts = np.bincount(nodes, minlength=self._store.num_nodes)
            self._inv_offsets = np.zeros(self._store.num_nodes + 1, dtype=np.int64)
            np.cumsum(counts, out=self._inv_offsets[1:])
        self._inv_limit = self._limit

    @property
    def inv_sets(self) -> np.ndarray:
        self._prefix_index()
        return self._inv_sets

    @property
    def inv_offsets(self) -> np.ndarray:
        self._prefix_index()
        return self._inv_offsets

    # -- store protocol -------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self._store.num_nodes

    @property
    def num_sets(self) -> int:
        return self._limit

    @property
    def total_size(self) -> int:
        return int(self._store.offsets[self._limit])

    @property
    def total_edges_examined(self) -> int:
        return self._store.edges_examined_upto(self._limit)

    def get(self, idx: int) -> np.ndarray:
        if idx < 0:
            idx += self._limit
        if not 0 <= idx < self._limit:
            raise IndexError(f"set index {idx} out of range")
        return self._store.get(idx)

    def __len__(self) -> int:
        return self._limit

    def __iter__(self) -> Iterator[np.ndarray]:
        for idx in range(self._limit):
            yield self._store.get(idx)

    def sets_containing(self, node: int) -> np.ndarray:
        self._prefix_index()
        node = int(node)
        if not 0 <= node < self._store.num_nodes:
            return self._inv_sets[:0]
        return self._inv_sets[self._inv_offsets[node] : self._inv_offsets[node + 1]]

    def coverage_counts(self, start: int = 0) -> np.ndarray:
        offsets = self._store.offsets
        lo = offsets[min(start, self._limit)]
        hi = offsets[self._limit]
        return np.bincount(
            self._store.nodes[lo:hi], minlength=self._store.num_nodes
        ).astype(np.int64)

    def coverage_of(self, seeds: Iterable[int]) -> int:
        self._prefix_index()
        seeds = np.unique(np.fromiter((int(s) for s in seeds), dtype=np.int64))
        seeds = seeds[(seeds >= 0) & (seeds < self._store.num_nodes)]
        elements = gather_rows(self._inv_sets, self._inv_offsets, seeds)
        return int(np.unique(elements).size)

    def __repr__(self) -> str:
        return (
            f"FlatPrefixView(limit={self._limit}, "
            f"store_sets={self._store.num_sets}, num_nodes={self.num_nodes})"
        )


def make_collection(num_nodes: int, backend: str = "flat"):
    """Factory for a per-machine RR store of the requested backend."""
    if backend == "flat":
        return FlatRRCollection(num_nodes)
    if backend == "reference":
        return RRCollection(num_nodes)
    raise ValueError(f"unknown collection backend {backend!r}")


def append_batch(collection, batch: FlatBatch) -> None:
    """Append a sampler's :class:`~repro.ris.rrset.FlatBatch` to a store.

    A :class:`FlatRRCollection` takes the CSR arrays as-is — no per-set
    Python objects are ever created; the reference :class:`RRCollection`
    (or any other store exposing ``extend``) receives re-wrapped
    :class:`~repro.ris.rrset.RRSample` views, preserving per-set roots
    and edge counts.
    """
    if isinstance(collection, FlatRRCollection):
        collection.append_arrays(
            batch.nodes,
            batch.offsets,
            edges_examined=batch.edges_examined,
        )
    else:
        collection.extend(batch.to_samples())
