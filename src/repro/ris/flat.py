"""CSR-layout RR-set store: the flat coverage backend's data structure.

:class:`FlatRRCollection` keeps every RR set of a machine in two flat
arrays — one ``int32`` ``nodes`` array concatenating all set contents and
one ``int64`` ``offsets`` array delimiting them — exactly the layout the
CSR graph and the checkpoint format already use.  The inverted index
``I_i(v)`` is itself stored in CSR form (``inv_sets`` / ``inv_offsets``),
built in one shot with a stable ``np.argsort`` over the nodes array plus
an ``np.bincount`` prefix sum, instead of the reference
:class:`~repro.ris.collection.RRCollection`'s per-node Python lists.

The collection stays append-only like the reference store: DIIMM grows
``R_i`` in waves, so appends are buffered and both CSR structures are
rebuilt lazily on the next read.  With ``W`` waves over ``T`` total
incidences the rebuild work is ``O(W * T)`` — negligible next to
generation — and every read between waves hits pure NumPy arrays, which
is what lets :mod:`repro.coverage.kernel` replace the per-element Python
loops of the greedy hot path with fancy indexing.

Ordering invariants (relied on by the exactness tests):

* ``get(j)`` returns the ``j``-th RR set's nodes in their stored
  (sorted) order, identical to the reference store;
* ``sets_containing(v)`` returns element indices in ascending order,
  matching the insertion-ordered lists of the reference inverted index —
  the stable sort ties element ids back in ascending order.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List

import numpy as np

from .collection import RRCollection
from .rrset import FlatBatch, RRSample

__all__ = ["FlatRRCollection", "MAX_NODES", "append_batch", "make_collection", "gather_rows"]

#: Largest graph the flat store can index: node ids are kept as ``int32``
#: (halving memory and wire traffic versus ``int64``), so ids must lie in
#: ``[0, 2**31)``.  Everything *per-collection* is already ``int64``
#: (offsets, inverted index), so set counts and total sizes are not
#: limited — only the node-id width is.
MAX_NODES = 1 << 31


def gather_rows(values: np.ndarray, offsets: np.ndarray, rows: np.ndarray) -> np.ndarray:
    """Concatenated CSR rows ``values[offsets[r]:offsets[r+1]] for r in rows``.

    The standard vectorized multi-slice gather: repeat each row start over
    its length and add the within-row ramp.  Returns an empty array when
    ``rows`` is empty or all selected rows are.
    """
    rows = np.asarray(rows)
    if rows.size == 0:
        return values[:0]
    starts = offsets[rows]
    lengths = offsets[rows + 1] - starts
    total = int(lengths.sum())
    if total == 0:
        return values[:0]
    ends = np.cumsum(lengths)
    ramp = np.arange(total, dtype=np.int64) - np.repeat(ends - lengths, lengths)
    return values[np.repeat(starts, lengths) + ramp]


class FlatRRCollection:
    """An append-only RR-set store over flat CSR arrays.

    Implements the same read protocol as :class:`RRCollection`
    (``num_nodes`` / ``num_sets`` / ``total_size`` / ``get`` /
    ``sets_containing`` / ``coverage_counts`` / ``coverage_of``), so every
    coverage algorithm accepts either store; the flat kernel additionally
    reads the raw arrays via :attr:`nodes`, :attr:`offsets`,
    :attr:`inv_sets` and :attr:`inv_offsets`.
    """

    def __init__(self, num_nodes: int) -> None:
        if num_nodes <= 0:
            raise ValueError(f"num_nodes must be positive, got {num_nodes}")
        # Checked before any allocation: past this limit the int32 casts
        # in _validate would silently wrap node ids into negatives.
        if num_nodes > MAX_NODES:
            raise ValueError(
                f"num_nodes must be <= {MAX_NODES} (node ids are stored as "
                f"int32 in the flat CSR layout), got {num_nodes}"
            )
        self._num_nodes = num_nodes
        self._nodes = np.zeros(0, dtype=np.int32)
        self._offsets = np.zeros(1, dtype=np.int64)
        self._inv_sets = np.zeros(0, dtype=np.int64)
        self._inv_offsets = np.zeros(num_nodes + 1, dtype=np.int64)
        # Appends land here until the next read rebuilds the CSR arrays.
        self._pending: List[np.ndarray] = []
        self._num_sets = 0
        self._total_size = 0
        self._total_edges_examined = 0

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def _validate(self, nodes: np.ndarray) -> np.ndarray:
        nodes = np.asarray(nodes)
        if nodes.size and (int(nodes.min()) < 0 or int(nodes.max()) >= self._num_nodes):
            raise ValueError(
                f"RR set contains node ids outside [0, {self._num_nodes})"
            )
        return nodes.astype(np.int32, copy=False)

    def add(self, sample: RRSample) -> int:
        """Append one RR set; returns its index within this collection."""
        nodes = self._validate(sample.nodes)
        idx = self._num_sets
        self._pending.append(nodes)
        self._num_sets += 1
        self._total_size += int(nodes.size)
        self._total_edges_examined += sample.edges_examined
        return idx

    def extend(self, samples: Iterable[RRSample]) -> None:
        """Append many RR sets (one DIIMM generation wave)."""
        for sample in samples:
            self.add(sample)

    def append_arrays(
        self,
        nodes: np.ndarray,
        offsets: np.ndarray,
        edges_examined: int = 0,
    ) -> None:
        """Append a whole flat batch (e.g. a worker's wave) in one call."""
        offsets = np.asarray(offsets, dtype=np.int64)
        if offsets.size == 0 or offsets[0] != 0 or offsets[-1] != np.asarray(nodes).size:
            raise ValueError("offsets must start at 0 and end at nodes.size")
        nodes = self._validate(nodes)
        for idx in range(offsets.size - 1):
            self._pending.append(nodes[offsets[idx] : offsets[idx + 1]])
        self._num_sets += offsets.size - 1
        self._total_size += int(nodes.size)
        self._total_edges_examined += int(edges_examined)

    def _materialize(self) -> None:
        """Fold pending appends into the CSR arrays and rebuild the index."""
        if not self._pending:
            return
        sizes = np.fromiter(
            (arr.size for arr in self._pending), dtype=np.int64, count=len(self._pending)
        )
        self._nodes = np.concatenate([self._nodes, *self._pending])
        new_offsets = self._offsets[-1] + np.cumsum(sizes)
        self._offsets = np.concatenate([self._offsets, new_offsets])
        self._pending = []
        # CSR inverted index: stable sort keeps element ids ascending
        # within each node bucket, matching the reference I_i(v) order.
        order = np.argsort(self._nodes, kind="stable")
        set_ids = np.repeat(
            np.arange(self._num_sets, dtype=np.int64), np.diff(self._offsets)
        )
        self._inv_sets = set_ids[order]
        counts = np.bincount(self._nodes, minlength=self._num_nodes)
        self._inv_offsets = np.zeros(self._num_nodes + 1, dtype=np.int64)
        np.cumsum(counts, out=self._inv_offsets[1:])

    # ------------------------------------------------------------------
    # Raw CSR access (the kernel's view)
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> np.ndarray:
        """Flat ``int32`` concatenation of every RR set's nodes."""
        self._materialize()
        return self._nodes

    @property
    def offsets(self) -> np.ndarray:
        """``int64`` array of length ``num_sets + 1`` delimiting the sets."""
        self._materialize()
        return self._offsets

    @property
    def inv_sets(self) -> np.ndarray:
        """Element ids of the CSR inverted index, grouped by node."""
        self._materialize()
        return self._inv_sets

    @property
    def inv_offsets(self) -> np.ndarray:
        """``int64`` array of length ``num_nodes + 1`` delimiting ``I_i(v)``."""
        self._materialize()
        return self._inv_offsets

    # ------------------------------------------------------------------
    # Store protocol (mirrors RRCollection)
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    @property
    def num_sets(self) -> int:
        """Number of RR sets stored (``|R_i|``)."""
        return self._num_sets

    @property
    def total_size(self) -> int:
        """Sum of RR-set sizes (drives NEWGREEDI's per-machine work)."""
        return self._total_size

    @property
    def total_edges_examined(self) -> int:
        """Sum of ``w(R)`` over stored sets (drives generation time)."""
        return self._total_edges_examined

    def get(self, idx: int) -> np.ndarray:
        """Node array (a view) of the ``idx``-th RR set."""
        self._materialize()
        if idx < 0:
            idx += self._num_sets
        if not 0 <= idx < self._num_sets:
            raise IndexError(f"set index {idx} out of range")
        return self._nodes[self._offsets[idx] : self._offsets[idx + 1]]

    def __len__(self) -> int:
        return self._num_sets

    def __iter__(self) -> Iterator[np.ndarray]:
        self._materialize()
        for idx in range(self._num_sets):
            yield self._nodes[self._offsets[idx] : self._offsets[idx + 1]]

    def sets_containing(self, node: int) -> np.ndarray:
        """Ascending element ids of RR sets containing ``node`` (``I_i(node)``)."""
        self._materialize()
        node = int(node)
        if not 0 <= node < self._num_nodes:
            return self._inv_sets[:0]
        return self._inv_sets[self._inv_offsets[node] : self._inv_offsets[node + 1]]

    def coverage_counts(self, start: int = 0) -> np.ndarray:
        """Per-node count of RR sets (with index >= ``start``) containing it."""
        self._materialize()
        lo = self._offsets[min(start, self._num_sets)]
        return np.bincount(self._nodes[lo:], minlength=self._num_nodes).astype(np.int64)

    def coverage_of(self, seeds: Iterable[int]) -> int:
        """Number of stored RR sets covered by the seed set."""
        self._materialize()
        seeds = np.unique(np.fromiter((int(s) for s in seeds), dtype=np.int64))
        seeds = seeds[(seeds >= 0) & (seeds < self._num_nodes)]
        elements = gather_rows(self._inv_sets, self._inv_offsets, seeds)
        return int(np.unique(elements).size)

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    @classmethod
    def from_store(cls, store) -> "FlatRRCollection":
        """Build from any object exposing the store read protocol.

        Accepts :class:`RRCollection`, :class:`CoverageInstance
        <repro.coverage.problem.CoverageInstance>` or another flat
        collection (copied).
        """
        flat = cls(store.num_nodes)
        for idx in range(store.num_sets):
            flat._pending.append(flat._validate(store.get(idx)))
        flat._num_sets = store.num_sets
        flat._total_size = store.total_size
        flat._total_edges_examined = int(getattr(store, "total_edges_examined", 0))
        return flat

    # Alias matching the reference store's name in the issue/docs.
    from_collection = from_store

    def to_collection(self) -> RRCollection:
        """Rebuild a reference :class:`RRCollection` with identical sets.

        Per-sample edge attribution is not stored (only the aggregate), so
        like :func:`repro.ris.serialization.load_collection` the edges are
        spread evenly and each sample reports its smallest node as root.
        """
        self._materialize()
        collection = RRCollection(self._num_nodes)
        base, extra = (
            divmod(self._total_edges_examined, self._num_sets)
            if self._num_sets
            else (0, 0)
        )
        for idx in range(self._num_sets):
            nodes = self._nodes[self._offsets[idx] : self._offsets[idx + 1]].copy()
            collection.add(
                RRSample(
                    nodes=nodes,
                    root=int(nodes[0]) if nodes.size else 0,
                    edges_examined=base + (1 if idx < extra else 0),
                )
            )
        return collection

    def __repr__(self) -> str:
        return (
            f"FlatRRCollection(num_sets={self._num_sets}, "
            f"total_size={self._total_size}, num_nodes={self._num_nodes})"
        )


def make_collection(num_nodes: int, backend: str = "flat"):
    """Factory for a per-machine RR store of the requested backend."""
    if backend == "flat":
        return FlatRRCollection(num_nodes)
    if backend == "reference":
        return RRCollection(num_nodes)
    raise ValueError(f"unknown collection backend {backend!r}")


def append_batch(collection, batch: FlatBatch) -> None:
    """Append a sampler's :class:`~repro.ris.rrset.FlatBatch` to a store.

    A :class:`FlatRRCollection` takes the CSR arrays as-is — no per-set
    Python objects are ever created; the reference :class:`RRCollection`
    (or any other store exposing ``extend``) receives re-wrapped
    :class:`~repro.ris.rrset.RRSample` views, preserving per-set roots
    and edge counts.
    """
    if isinstance(collection, FlatRRCollection):
        collection.append_arrays(
            batch.nodes,
            batch.offsets,
            edges_examined=int(batch.edges_examined.sum()),
        )
    else:
        collection.extend(batch.to_samples())
