"""CSR-layout RR-set store: the flat coverage backend's data structure.

:class:`FlatRRCollection` keeps every RR set of a machine in two flat
arrays — one ``int32`` ``nodes`` array concatenating all set contents and
one ``int64`` ``offsets`` array delimiting them — exactly the layout the
CSR graph and the checkpoint format already use.  The inverted index
``I_i(v)`` is itself stored in CSR form (``inv_sets`` / ``inv_offsets``),
built in one shot with a stable ``np.argsort`` over the nodes array plus
an ``np.bincount`` prefix sum, instead of the reference
:class:`~repro.ris.collection.RRCollection`'s per-node Python lists.

The collection grows append-mostly: DIIMM grows ``R_i`` in waves, so
appends are buffered and both CSR structures are rebuilt lazily on the
next read.  With ``W`` waves over ``T`` total incidences the rebuild
work is ``O(W * T)`` — negligible next to generation — and every read
between waves hits pure NumPy arrays, which is what lets
:mod:`repro.coverage.kernel` replace the per-element Python loops of the
greedy hot path with fancy indexing.

Since the dynamic-graph work the store also *repairs* in place: when a
:class:`~repro.graphs.digraph.GraphDelta` lands, :meth:`affected_sets`
resolves which RR sets consulted a changed in-row (the node-keyed
inverted index doubles as the edge→RR-set index, because a reverse
traversal examines the in-rows of exactly the nodes it collects),
:meth:`replace_sets` splices their regenerated contents over the old
ones — set ids stay stable — and :meth:`invalidate` tombstones sets
(contents cleared, id kept) when regeneration is deferred.
:meth:`compact` drops accumulated tombstones and renumbers.

Ordering invariants (relied on by the exactness tests):

* ``get(j)`` returns the ``j``-th RR set's nodes in their stored
  (sorted) order, identical to the reference store;
* ``sets_containing(v)`` returns element indices in ascending order,
  matching the insertion-ordered lists of the reference inverted index —
  the stable sort ties element ids back in ascending order.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List

import numpy as np

from .collection import RRCollection
from .rrset import FlatBatch, RRSample

__all__ = [
    "FlatRRCollection",
    "FlatPrefixView",
    "MAX_NODES",
    "append_batch",
    "make_collection",
    "gather_rows",
]

#: Largest graph the flat store can index: node ids are kept as ``int32``
#: (halving memory and wire traffic versus ``int64``), so ids must lie in
#: ``[0, 2**31)``.  Everything *per-collection* is already ``int64``
#: (offsets, inverted index), so set counts and total sizes are not
#: limited — only the node-id width is.
MAX_NODES = 1 << 31


def gather_rows(values: np.ndarray, offsets: np.ndarray, rows: np.ndarray) -> np.ndarray:
    """Concatenated CSR rows ``values[offsets[r]:offsets[r+1]] for r in rows``.

    The standard vectorized multi-slice gather: repeat each row start over
    its length and add the within-row ramp.  Returns an empty array when
    ``rows`` is empty or all selected rows are.
    """
    rows = np.asarray(rows)
    if rows.size == 0:
        return values[:0]
    starts = offsets[rows]
    lengths = offsets[rows + 1] - starts
    total = int(lengths.sum())
    if total == 0:
        return values[:0]
    ends = np.cumsum(lengths)
    ramp = np.arange(total, dtype=np.int64) - np.repeat(ends - lengths, lengths)
    return values[np.repeat(starts, lengths) + ramp]


class FlatRRCollection:
    """An RR-set store over flat CSR arrays: append-mostly, repairable.

    Implements the same read protocol as :class:`RRCollection`
    (``num_nodes`` / ``num_sets`` / ``total_size`` / ``get`` /
    ``sets_containing`` / ``coverage_counts`` / ``coverage_of``), so every
    coverage algorithm accepts either store; the flat kernel additionally
    reads the raw arrays via :attr:`nodes`, :attr:`offsets`,
    :attr:`inv_sets` and :attr:`inv_offsets`.

    Mutation is appends (:meth:`add` / :meth:`append_arrays`) plus the
    dynamic-graph repair surface: :meth:`replace_sets` rewrites chosen
    sets in place under stable ids, :meth:`invalidate` tombstones them,
    and :meth:`compact` drops tombstones.  In-place mutation invalidates
    any outstanding :class:`FlatPrefixView` over this store — build
    views after repairing, as the sample pool does.
    """

    def __init__(self, num_nodes: int) -> None:
        if num_nodes <= 0:
            raise ValueError(f"num_nodes must be positive, got {num_nodes}")
        # Checked before any allocation: past this limit the int32 casts
        # in _validate would silently wrap node ids into negatives.
        if num_nodes > MAX_NODES:
            raise ValueError(
                f"num_nodes must be <= {MAX_NODES} (node ids are stored as "
                f"int32 in the flat CSR layout), got {num_nodes}"
            )
        self._num_nodes = num_nodes
        self._nodes = np.zeros(0, dtype=np.int32)
        self._offsets = np.zeros(1, dtype=np.int64)
        self._inv_sets = np.zeros(0, dtype=np.int64)
        self._inv_offsets = np.zeros(num_nodes + 1, dtype=np.int64)
        # Appends land here until the next read rebuilds the CSR arrays.
        self._pending: List[np.ndarray] = []
        self._pending_edges: List[np.ndarray] = []
        # Cumulative per-set edges-examined: entry j is the total over the
        # first j sets, so any prefix's generation work is one lookup.
        self._edges_cumsum = np.zeros(1, dtype=np.int64)
        self._num_sets = 0
        self._total_size = 0
        self._total_edges_examined = 0
        self._num_tombstones = 0

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def _validate(self, nodes: np.ndarray) -> np.ndarray:
        nodes = np.asarray(nodes)
        if nodes.size and (int(nodes.min()) < 0 or int(nodes.max()) >= self._num_nodes):
            raise ValueError(
                f"RR set contains node ids outside [0, {self._num_nodes})"
            )
        return nodes.astype(np.int32, copy=False)

    @staticmethod
    def _per_set_edges(edges_examined, count: int) -> np.ndarray:
        """Per-set edge counts for ``count`` sets.

        Accepts a per-set array (exact attribution) or an aggregate int,
        which is spread evenly — the same policy
        :meth:`to_collection` and the checkpoint loader already apply
        when only the aggregate survived.
        """
        if np.ndim(edges_examined) > 0:
            per_set = np.asarray(edges_examined, dtype=np.int64)
            if per_set.size != count:
                raise ValueError(
                    f"edges_examined has {per_set.size} entries for {count} sets"
                )
            return per_set
        total = int(edges_examined)
        if count == 0:
            return np.zeros(0, dtype=np.int64)
        base, extra = divmod(total, count)
        per_set = np.full(count, base, dtype=np.int64)
        per_set[:extra] += 1
        return per_set

    def add(self, sample: RRSample) -> int:
        """Append one RR set; returns its index within this collection."""
        nodes = self._validate(sample.nodes)
        idx = self._num_sets
        self._pending.append(nodes)
        self._pending_edges.append(
            np.asarray([sample.edges_examined], dtype=np.int64)
        )
        self._num_sets += 1
        self._total_size += int(nodes.size)
        self._total_edges_examined += sample.edges_examined
        return idx

    def extend(self, samples: Iterable[RRSample]) -> None:
        """Append many RR sets (one DIIMM generation wave)."""
        for sample in samples:
            self.add(sample)

    def append_arrays(
        self,
        nodes: np.ndarray,
        offsets: np.ndarray,
        edges_examined=0,
    ) -> None:
        """Append a whole flat batch (e.g. a worker's wave) in one call.

        ``edges_examined`` is either the wave's aggregate (an int, spread
        evenly over its sets) or a per-set ``int64`` array of length
        ``offsets.size - 1`` (exact attribution, as
        :attr:`FlatBatch.edges_examined <repro.ris.rrset.FlatBatch>`
        carries it).
        """
        offsets = np.asarray(offsets, dtype=np.int64)
        if offsets.size == 0 or offsets[0] != 0 or offsets[-1] != np.asarray(nodes).size:
            raise ValueError("offsets must start at 0 and end at nodes.size")
        nodes = self._validate(nodes)
        count = offsets.size - 1
        per_set = self._per_set_edges(edges_examined, count)
        for idx in range(count):
            self._pending.append(nodes[offsets[idx] : offsets[idx + 1]])
        self._pending_edges.append(per_set)
        self._num_sets += count
        self._total_size += int(nodes.size)
        # The aggregate keeps its historical semantics even for an empty
        # batch carrying a scalar count; per-set attribution needs sets.
        if np.ndim(edges_examined) > 0:
            self._total_edges_examined += int(per_set.sum())
        else:
            self._total_edges_examined += int(edges_examined)

    def _materialize(self) -> None:
        """Fold pending appends into the CSR arrays and rebuild the index."""
        if not self._pending:
            self._pending_edges = [e for e in self._pending_edges if e.size]
            return
        sizes = np.fromiter(
            (arr.size for arr in self._pending), dtype=np.int64, count=len(self._pending)
        )
        self._nodes = np.concatenate([self._nodes, *self._pending])
        new_offsets = self._offsets[-1] + np.cumsum(sizes)
        self._offsets = np.concatenate([self._offsets, new_offsets])
        self._pending = []
        per_set_edges = np.concatenate(self._pending_edges)
        self._edges_cumsum = np.concatenate(
            [self._edges_cumsum, self._edges_cumsum[-1] + np.cumsum(per_set_edges)]
        )
        self._pending_edges = []
        self._rebuild_index()

    def _rebuild_index(self) -> None:
        # CSR inverted index: stable sort keeps element ids ascending
        # within each node bucket, matching the reference I_i(v) order.
        order = np.argsort(self._nodes, kind="stable")
        set_ids = np.repeat(
            np.arange(self._num_sets, dtype=np.int64), np.diff(self._offsets)
        )
        self._inv_sets = set_ids[order]
        counts = np.bincount(self._nodes, minlength=self._num_nodes)
        self._inv_offsets = np.zeros(self._num_nodes + 1, dtype=np.int64)
        np.cumsum(counts, out=self._inv_offsets[1:])

    # ------------------------------------------------------------------
    # Repair surface (dynamic graphs)
    # ------------------------------------------------------------------
    def affected_sets(self, touched) -> np.ndarray:
        """Element ids of RR sets whose traversal consulted a changed row.

        ``touched`` is what :meth:`VersionedGraph.apply
        <repro.graphs.digraph.VersionedGraph.apply>` returned: the
        ascending node ids whose in-rows changed, or ``None`` meaning
        every set.  A reverse traversal examines the in-rows of exactly
        the nodes it collects, so a set consulted a changed row iff it
        *contains* a touched node — the node-keyed inverted index is the
        edge→RR-set index.
        """
        self._materialize()
        if touched is None:
            return np.arange(self._num_sets, dtype=np.int64)
        touched = np.asarray(touched, dtype=np.int64)
        touched = touched[(touched >= 0) & (touched < self._num_nodes)]
        hits = gather_rows(self._inv_sets, self._inv_offsets, touched)
        return np.unique(hits)

    def replace_sets(self, set_ids, batch: FlatBatch) -> None:
        """Rewrite the contents of ``set_ids`` (ascending) in place.

        The ``pos``-th set of ``batch`` becomes the new content of
        ``set_ids[pos]``; ids and set count are unchanged, so seed sets
        and coverage element ids stay comparable across the repair.
        Outstanding prefix views over this store become stale — rebuild
        them afterwards.
        """
        self._materialize()
        ids = np.asarray(set_ids, dtype=np.int64)
        if ids.size == 0:
            if batch.count:
                raise ValueError(f"batch has {batch.count} sets for 0 ids")
            return
        if ids.size > 1 and np.any(np.diff(ids) <= 0):
            raise ValueError("set_ids must be strictly ascending")
        if int(ids[0]) < 0 or int(ids[-1]) >= self._num_sets:
            raise IndexError(f"set ids out of range [0, {self._num_sets})")
        if batch.count != ids.size:
            raise ValueError(f"batch has {batch.count} sets for {ids.size} ids")
        new_nodes = self._validate(batch.nodes)
        old_sizes = np.diff(self._offsets)
        new_sizes = np.diff(batch.offsets)
        tombstone_delta = int(
            np.count_nonzero(new_sizes == 0) - np.count_nonzero(old_sizes[ids] == 0)
        )
        # Splice: alternate unchanged spans with the replacement rows.
        parts = []
        prev = 0
        for pos in range(ids.size):
            sid = int(ids[pos])
            parts.append(self._nodes[self._offsets[prev] : self._offsets[sid]])
            parts.append(new_nodes[batch.offsets[pos] : batch.offsets[pos + 1]])
            prev = sid + 1
        parts.append(self._nodes[self._offsets[prev] :])
        self._nodes = np.concatenate(parts)
        sizes = old_sizes
        sizes[ids] = new_sizes
        self._offsets = np.zeros(sizes.size + 1, dtype=np.int64)
        np.cumsum(sizes, out=self._offsets[1:])
        self._total_size = int(self._offsets[-1])
        per_set_edges = np.diff(self._edges_cumsum)
        per_set_edges[ids] = batch.edges_examined
        self._edges_cumsum = np.zeros(per_set_edges.size + 1, dtype=np.int64)
        np.cumsum(per_set_edges, out=self._edges_cumsum[1:])
        self._total_edges_examined = int(self._edges_cumsum[-1])
        self._num_tombstones += tombstone_delta
        self._rebuild_index()

    def invalidate(self, set_ids) -> int:
        """Tombstone the given sets: contents cleared, ids kept.

        A tombstone is a logically empty set (real RR sets always contain
        their root, so emptiness is unambiguous); its edge accounting is
        zeroed.  Returns how many sets were *newly* tombstoned.  Used
        when regeneration is deferred; the pool's repair path instead
        regenerates and calls :meth:`replace_sets` directly.
        """
        ids = np.unique(np.asarray(set_ids, dtype=np.int64))
        if ids.size == 0:
            return 0
        before = self._num_tombstones
        empty = FlatBatch(
            np.zeros(0, dtype=np.int32),
            np.zeros(ids.size + 1, dtype=np.int64),
            np.full(ids.size, -1, dtype=np.int64),
            np.zeros(ids.size, dtype=np.int64),
        )
        self.replace_sets(ids, empty)
        return self._num_tombstones - before

    def compact(self) -> np.ndarray:
        """Drop tombstoned sets, re-packing the CSR arrays.

        Returns the old→new id mapping (length: old ``num_sets``; ``-1``
        for dropped sets).  Tombstones hold no node content, so only the
        offset/edge bookkeeping shrinks; the byte accounting is asserted.
        """
        self._materialize()
        sizes = np.diff(self._offsets)
        keep = np.flatnonzero(sizes > 0)
        mapping = np.full(self._num_sets, -1, dtype=np.int64)
        mapping[keep] = np.arange(keep.size, dtype=np.int64)
        if keep.size == self._num_sets:
            self._num_tombstones = 0
            return mapping
        bytes_before = self.nbytes()
        per_set_edges = np.diff(self._edges_cumsum)
        self._offsets = np.zeros(keep.size + 1, dtype=np.int64)
        np.cumsum(sizes[keep], out=self._offsets[1:])
        self._edges_cumsum = np.zeros(keep.size + 1, dtype=np.int64)
        np.cumsum(per_set_edges[keep], out=self._edges_cumsum[1:])
        self._num_sets = int(keep.size)
        self._total_size = int(self._offsets[-1])
        self._total_edges_examined = int(self._edges_cumsum[-1])
        self._num_tombstones = 0
        self._rebuild_index()
        # Byte accounting: all node content was live (tombstones are
        # empty), so the nodes array is untouched and every index array
        # shrank or stayed; nothing may have grown.
        assert int(self._offsets[-1]) == self._nodes.size
        assert self.nbytes() <= bytes_before, "compact grew the store"
        return mapping

    def nbytes(self) -> int:
        """Bytes held by the materialized CSR arrays."""
        self._materialize()
        return int(
            self._nodes.nbytes
            + self._offsets.nbytes
            + self._inv_sets.nbytes
            + self._inv_offsets.nbytes
            + self._edges_cumsum.nbytes
        )

    # ------------------------------------------------------------------
    # Raw CSR access (the kernel's view)
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> np.ndarray:
        """Flat ``int32`` concatenation of every RR set's nodes."""
        self._materialize()
        return self._nodes

    @property
    def offsets(self) -> np.ndarray:
        """``int64`` array of length ``num_sets + 1`` delimiting the sets."""
        self._materialize()
        return self._offsets

    @property
    def inv_sets(self) -> np.ndarray:
        """Element ids of the CSR inverted index, grouped by node."""
        self._materialize()
        return self._inv_sets

    @property
    def inv_offsets(self) -> np.ndarray:
        """``int64`` array of length ``num_nodes + 1`` delimiting ``I_i(v)``."""
        self._materialize()
        return self._inv_offsets

    # ------------------------------------------------------------------
    # Store protocol (mirrors RRCollection)
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    @property
    def num_sets(self) -> int:
        """Number of RR sets stored (``|R_i|``)."""
        return self._num_sets

    @property
    def num_tombstones(self) -> int:
        """Number of tombstoned (logically empty) sets awaiting compaction."""
        return self._num_tombstones

    @property
    def num_live_sets(self) -> int:
        """Stored sets minus tombstones."""
        return self._num_sets - self._num_tombstones

    @property
    def total_size(self) -> int:
        """Sum of RR-set sizes (drives NEWGREEDI's per-machine work)."""
        return self._total_size

    @property
    def total_edges_examined(self) -> int:
        """Sum of ``w(R)`` over stored sets (drives generation time)."""
        return self._total_edges_examined

    def edges_examined_upto(self, limit: int) -> int:
        """Edges examined generating the first ``limit`` RR sets.

        Exact where the sets arrived with per-set counts (sampler
        batches); evenly attributed where only a wave aggregate survived
        (checkpoint round-trips), mirroring :meth:`to_collection`.
        """
        self._materialize()
        if not 0 <= limit <= self._num_sets:
            raise ValueError(f"limit {limit} out of range [0, {self._num_sets}]")
        return int(self._edges_cumsum[limit])

    def get(self, idx: int) -> np.ndarray:
        """Node array (a view) of the ``idx``-th RR set."""
        self._materialize()
        if idx < 0:
            idx += self._num_sets
        if not 0 <= idx < self._num_sets:
            raise IndexError(f"set index {idx} out of range")
        return self._nodes[self._offsets[idx] : self._offsets[idx + 1]]

    def __len__(self) -> int:
        return self._num_sets

    def __iter__(self) -> Iterator[np.ndarray]:
        self._materialize()
        for idx in range(self._num_sets):
            yield self._nodes[self._offsets[idx] : self._offsets[idx + 1]]

    def sets_containing(self, node: int) -> np.ndarray:
        """Ascending element ids of RR sets containing ``node`` (``I_i(node)``)."""
        self._materialize()
        node = int(node)
        if not 0 <= node < self._num_nodes:
            return self._inv_sets[:0]
        return self._inv_sets[self._inv_offsets[node] : self._inv_offsets[node + 1]]

    def coverage_counts(self, start: int = 0) -> np.ndarray:
        """Per-node count of RR sets (with index >= ``start``) containing it."""
        self._materialize()
        lo = self._offsets[min(start, self._num_sets)]
        return np.bincount(self._nodes[lo:], minlength=self._num_nodes).astype(np.int64)

    def coverage_of(self, seeds: Iterable[int]) -> int:
        """Number of stored RR sets covered by the seed set."""
        self._materialize()
        seeds = np.unique(np.fromiter((int(s) for s in seeds), dtype=np.int64))
        seeds = seeds[(seeds >= 0) & (seeds < self._num_nodes)]
        elements = gather_rows(self._inv_sets, self._inv_offsets, seeds)
        return int(np.unique(elements).size)

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    @classmethod
    def from_store(cls, store) -> "FlatRRCollection":
        """Build from any object exposing the store read protocol.

        Accepts :class:`RRCollection`, :class:`CoverageInstance
        <repro.coverage.problem.CoverageInstance>` or another flat
        collection (copied).
        """
        flat = cls(store.num_nodes)
        for idx in range(store.num_sets):
            flat._pending.append(flat._validate(store.get(idx)))
        flat._num_sets = store.num_sets
        flat._total_size = store.total_size
        flat._total_edges_examined = int(getattr(store, "total_edges_examined", 0))
        flat._pending_edges.append(
            cls._per_set_edges(flat._total_edges_examined, store.num_sets)
        )
        return flat

    # Alias matching the reference store's name in the issue/docs.
    from_collection = from_store

    def to_collection(self) -> RRCollection:
        """Rebuild a reference :class:`RRCollection` with identical sets.

        Edges are attributed per set from the stored cumulative counts
        (exact for sampler-appended sets, evenly spread where only a wave
        aggregate survived); each sample reports its smallest node as
        root, since roots are not stored.
        """
        self._materialize()
        collection = RRCollection(self._num_nodes)
        per_set_edges = np.diff(self._edges_cumsum)
        for idx in range(self._num_sets):
            nodes = self._nodes[self._offsets[idx] : self._offsets[idx + 1]].copy()
            collection.add(
                RRSample(
                    nodes=nodes,
                    root=int(nodes[0]) if nodes.size else 0,
                    edges_examined=int(per_set_edges[idx]),
                )
            )
        return collection

    def __repr__(self) -> str:
        return (
            f"FlatRRCollection(num_sets={self._num_sets}, "
            f"total_size={self._total_size}, num_nodes={self._num_nodes})"
        )


class FlatPrefixView:
    """A read-only view of the first ``limit`` RR sets of a flat store.

    The warm-serving path (:mod:`repro.core.pool`) keeps one long-lived
    :class:`FlatRRCollection` per machine and answers each query against
    a *prefix* of it: because the per-set samplers' batch contract makes
    machine ``i``'s first ``c`` RR sets depend only on its RNG stream and
    ``c`` — never on how generation was batched into waves — the prefix
    is bit-identical to the collection a cold run of the same schedule
    would have built, and so is everything selected from it.

    The view implements the full store read protocol plus the raw-array
    surface the flat coverage kernel uses (:attr:`nodes`,
    :attr:`offsets`, :attr:`inv_sets`, :attr:`inv_offsets`), so greedy
    selection and NEWGREEDI run on a view unchanged.  ``nodes`` and
    ``offsets`` are zero-copy slices; the prefix inverted index is built
    lazily per distinct limit (one stable argsort over the prefix — the
    same work a cold run's per-round materialize does), or borrowed from
    the backing store when the view covers it entirely.

    Limits only grow (:meth:`set_limit`), matching the store's
    append-mostly growth, and must never exceed the backing store's
    current size — the pool tops the store up *before* advancing any
    view.  A view does **not** survive in-place repair: after
    :meth:`FlatRRCollection.replace_sets` / :meth:`~FlatRRCollection.compact`
    its sliced arrays and cached prefix index describe the old contents,
    so repair-capable callers (the sample pool) build a fresh view per
    query and never hold one across an update.
    """

    def __init__(self, store: FlatRRCollection, limit: int = 0) -> None:
        self._store = store
        self._limit = 0
        self._inv_limit = -1
        self._inv_sets = np.zeros(0, dtype=np.int64)
        self._inv_offsets = np.zeros(store.num_nodes + 1, dtype=np.int64)
        self.set_limit(limit)

    @property
    def base(self) -> FlatRRCollection:
        """The backing (shared, append-only) collection."""
        return self._store

    @property
    def limit(self) -> int:
        return self._limit

    def set_limit(self, limit: int) -> None:
        """Advance the view to cover the first ``limit`` sets."""
        limit = int(limit)
        if limit < self._limit:
            raise ValueError(
                f"prefix views only grow: limit {limit} < current {self._limit}"
            )
        if limit > self._store.num_sets:
            raise ValueError(
                f"limit {limit} exceeds the backing store's "
                f"{self._store.num_sets} sets; top the pool up first"
            )
        self._limit = limit

    # -- raw CSR access (the kernel's view) -----------------------------
    @property
    def nodes(self) -> np.ndarray:
        return self._store.nodes[: self._store.offsets[self._limit]]

    @property
    def offsets(self) -> np.ndarray:
        return self._store.offsets[: self._limit + 1]

    def _prefix_index(self) -> None:
        if self._inv_limit == self._limit:
            return
        if self._limit == self._store.num_sets:
            # The view covers the whole store: borrow its index.  The
            # borrowed arrays stay valid even if the store grows later —
            # they describe exactly the first `limit` sets.
            self._inv_sets = self._store.inv_sets
            self._inv_offsets = self._store.inv_offsets
        else:
            nodes = self.nodes
            order = np.argsort(nodes, kind="stable")
            set_ids = np.repeat(
                np.arange(self._limit, dtype=np.int64), np.diff(self.offsets)
            )
            self._inv_sets = set_ids[order]
            counts = np.bincount(nodes, minlength=self._store.num_nodes)
            self._inv_offsets = np.zeros(self._store.num_nodes + 1, dtype=np.int64)
            np.cumsum(counts, out=self._inv_offsets[1:])
        self._inv_limit = self._limit

    @property
    def inv_sets(self) -> np.ndarray:
        self._prefix_index()
        return self._inv_sets

    @property
    def inv_offsets(self) -> np.ndarray:
        self._prefix_index()
        return self._inv_offsets

    # -- store protocol -------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self._store.num_nodes

    @property
    def num_sets(self) -> int:
        return self._limit

    @property
    def total_size(self) -> int:
        return int(self._store.offsets[self._limit])

    @property
    def total_edges_examined(self) -> int:
        return self._store.edges_examined_upto(self._limit)

    def get(self, idx: int) -> np.ndarray:
        if idx < 0:
            idx += self._limit
        if not 0 <= idx < self._limit:
            raise IndexError(f"set index {idx} out of range")
        return self._store.get(idx)

    def __len__(self) -> int:
        return self._limit

    def __iter__(self) -> Iterator[np.ndarray]:
        for idx in range(self._limit):
            yield self._store.get(idx)

    def sets_containing(self, node: int) -> np.ndarray:
        self._prefix_index()
        node = int(node)
        if not 0 <= node < self._store.num_nodes:
            return self._inv_sets[:0]
        return self._inv_sets[self._inv_offsets[node] : self._inv_offsets[node + 1]]

    def coverage_counts(self, start: int = 0) -> np.ndarray:
        offsets = self._store.offsets
        lo = offsets[min(start, self._limit)]
        hi = offsets[self._limit]
        return np.bincount(
            self._store.nodes[lo:hi], minlength=self._store.num_nodes
        ).astype(np.int64)

    def coverage_of(self, seeds: Iterable[int]) -> int:
        self._prefix_index()
        seeds = np.unique(np.fromiter((int(s) for s in seeds), dtype=np.int64))
        seeds = seeds[(seeds >= 0) & (seeds < self._store.num_nodes)]
        elements = gather_rows(self._inv_sets, self._inv_offsets, seeds)
        return int(np.unique(elements).size)

    def __repr__(self) -> str:
        return (
            f"FlatPrefixView(limit={self._limit}, "
            f"store_sets={self._store.num_sets}, num_nodes={self.num_nodes})"
        )


def make_collection(
    num_nodes: int,
    backend: str = "flat",
    *,
    machine_id: int = 0,
    sketch_precision: int = 10,
):
    """Factory for a per-machine RR store of the requested backend.

    ``machine_id`` and ``sketch_precision`` only matter to the
    ``"sketch"`` backend: the id offsets the global set-id hash space so
    collections on different machines never collide, and the precision
    sets the per-node register count ``m = 2**sketch_precision``.
    """
    if backend == "flat":
        return FlatRRCollection(num_nodes)
    if backend == "reference":
        return RRCollection(num_nodes)
    if backend == "sketch":
        # Imported lazily: repro.coverage imports repro.ris at package
        # init, so a module-level import here would be circular.
        from ..coverage.sketch import SketchRRCollection

        return SketchRRCollection(
            num_nodes, precision=sketch_precision, machine_id=machine_id
        )
    raise ValueError(f"unknown collection backend {backend!r}")


def append_batch(collection, batch: FlatBatch) -> None:
    """Append a sampler's :class:`~repro.ris.rrset.FlatBatch` to a store.

    Stores exposing ``append_arrays`` (:class:`FlatRRCollection`, the
    sketch register bank) take the CSR arrays as-is — no per-set Python
    objects are ever created; the reference :class:`RRCollection` (or any
    other store exposing ``extend``) receives re-wrapped
    :class:`~repro.ris.rrset.RRSample` views, preserving per-set roots
    and edge counts.
    """
    if hasattr(collection, "append_arrays"):
        collection.append_arrays(
            batch.nodes,
            batch.offsets,
            edges_examined=batch.edges_examined,
        )
    else:
        collection.extend(batch.to_samples())
