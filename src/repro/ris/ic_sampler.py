"""RR-set generation under the IC model: reverse stochastic BFS.

Following Section III-A of the paper, a random RR set under IC is built by

1. picking a root ``v`` uniformly at random,
2. running a BFS from ``v`` that follows *incoming* edges, traversing each
   edge ``<u', u>`` independently with probability ``p_{u',u}``,
3. returning every node the BFS reached (including ``v``).

Each frontier is processed with one vectorised coin-flip batch over all of
its in-edges, which is what makes pure-Python sampling viable on the
scaled datasets.  :meth:`ICReverseBFSSampler.sample_batch` runs the same
reverse BFS over many roots per call, writing wave-at-a-time into one
growing CSR buffer — consuming the RNG stream identically to repeated
:meth:`~ICReverseBFSSampler.sample` calls (differentially tested) while
skipping every per-set Python object.
"""

from __future__ import annotations

import numpy as np

from ..graphs.digraph import DirectedGraph
from .rrset import FlatBatch, RRSample, RRSampler

__all__ = ["ICReverseBFSSampler"]


def _grow(buffer: np.ndarray, used: int, needed: int) -> np.ndarray:
    """Return ``buffer`` (or a doubled copy) with room for ``needed`` items."""
    if needed <= buffer.size:
        return buffer
    # A zero-size buffer would make the doubling loop spin forever.
    capacity = max(buffer.size, 1)
    while capacity < needed:
        capacity *= 2
    grown = np.empty(capacity, dtype=buffer.dtype)
    grown[:used] = buffer[:used]
    return grown


class ICReverseBFSSampler(RRSampler):
    """Stochastic reverse BFS sampler for the IC model."""

    def __init__(self, graph: DirectedGraph) -> None:
        super().__init__(graph)
        self._visited = np.zeros(graph.num_nodes, dtype=bool)
        # True while a draw is in flight; a draw that raised mid-BFS leaves
        # it set, and the next draw hard-resets the scratch bitmap instead
        # of trusting the (possibly partial) incremental reset.
        self._scratch_dirty = False
        # Lazy plain-Python indptr copy for sample_batch's single-node
        # frontier fast path (list scalar reads beat numpy scalar reads).
        self._indptr_list: list[int] | None = None

    def _reset_scratch(self) -> None:
        if self._scratch_dirty:
            self._visited[:] = False
        self._scratch_dirty = True

    def sample(self, rng: np.random.Generator, root: int | None = None) -> RRSample:
        """Draw one RR set; ``root`` can be pinned for testing."""
        graph = self.graph
        if root is None:
            root = self.sample_root(rng)
        self._reset_scratch()
        visited = self._visited
        collected = [root]
        visited[root] = True
        frontier = np.asarray([root], dtype=np.int64)
        edges_examined = 0

        indptr, indices, probs = graph.in_indptr, graph.in_indices, graph.in_probs
        while frontier.size:
            starts = indptr[frontier]
            stops = indptr[frontier + 1]
            counts = stops - starts
            total = int(counts.sum())
            edges_examined += total
            if total == 0:
                break
            offsets = np.repeat(starts, counts)
            within = np.arange(total) - np.repeat(np.cumsum(counts) - counts, counts)
            edge_idx = offsets + within
            success = rng.random(total) < probs[edge_idx]
            reached = indices[edge_idx[success]]
            if reached.size == 0:
                break
            reached = np.unique(reached)
            newly = reached[~visited[reached]]
            visited[newly] = True
            collected.extend(int(u) for u in newly)
            frontier = newly.astype(np.int64)

        # Reset the scratch bitmap for the next sample without a full
        # O(n) clear.
        visited[np.asarray(collected, dtype=np.int64)] = False
        self._scratch_dirty = False
        nodes = np.unique(np.asarray(collected, dtype=np.int32))
        return RRSample(nodes=nodes, root=root, edges_examined=edges_examined)

    def sample_batch(self, rng: np.random.Generator, count: int) -> FlatBatch:
        """Draw ``count`` RR sets wave-at-a-time into one flat CSR buffer.

        Bit-identical to ``pack_samples(sample_many(count, rng))``: the
        RNG-visible operations (root draw, one coin-flip batch per
        frontier) are the same sequence; only the bookkeeping around them
        changes — reached nodes land directly in a growing ``int32``
        buffer and each finished segment is sorted in place, so no
        :class:`RRSample`, per-set list, or ``np.unique`` is ever built.
        """
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        graph = self.graph
        n = graph.num_nodes
        indptr, indices, probs = graph.in_indptr, graph.in_indices, graph.in_probs
        if self._indptr_list is None:
            self._indptr_list = indptr.tolist()
        indptr_l = self._indptr_list
        self._reset_scratch()
        visited = self._visited
        random = rng.random

        buf = np.empty(max(256, 8 * count), dtype=np.int32)
        offsets = np.zeros(count + 1, dtype=np.int64)
        roots = np.empty(count, dtype=np.int64)
        edges = np.empty(count, dtype=np.int64)
        write = 0
        for j in range(count):
            root = int(rng.integers(0, n))
            segment_start = write
            buf = _grow(buf, write, write + 1)
            buf[write] = root
            write += 1
            visited[root] = True
            # ``single >= 0`` is the one-node-frontier fast path (always
            # taken on the first wave): its in-edges are one contiguous
            # CSR slice, so the repeat/cumsum index construction of the
            # general wave collapses to two array views.  Either branch
            # draws the same ``random(total)`` with coins mapped to edges
            # in the same order, so the RNG stream matches sample().
            single = root
            frontier = np.empty(0, dtype=np.int64)
            edges_examined = 0
            while True:
                if single >= 0:
                    start = indptr_l[single]
                    total = indptr_l[single + 1] - start
                    edges_examined += total
                    if total == 0:
                        break
                    success = random(total) < probs[start : start + total]
                    reached = indices[start : start + total][success]
                else:
                    starts = indptr[frontier]
                    counts = indptr[frontier + 1] - starts
                    ends = counts.cumsum()
                    total = int(ends[-1])
                    edges_examined += total
                    if total == 0:
                        break
                    edge_idx = starts.repeat(counts) + (
                        np.arange(total) - (ends - counts).repeat(counts)
                    )
                    success = random(total) < probs[edge_idx]
                    reached = indices[edge_idx[success]]
                if reached.size == 0:
                    break
                # Same set as sample()'s unique-then-filter, computed as
                # filter-then-sorted-dedupe: discard visited nodes first
                # (usually most of them), then sort in place and drop
                # adjacent repeats — cheaper than np.unique per wave.
                cand = reached[~visited[reached]]
                if cand.size == 0:
                    break
                if cand.size > 1:
                    cand.sort()
                    keep = np.empty(cand.size, dtype=bool)
                    keep[0] = True
                    np.not_equal(cand[1:], cand[:-1], out=keep[1:])
                    newly = cand[keep]
                else:
                    newly = cand
                visited[newly] = True
                buf = _grow(buf, write, write + newly.size)
                buf[write : write + newly.size] = newly
                write += newly.size
                if newly.size == 1:
                    single = int(newly[0])
                else:
                    single = -1
                    frontier = newly.astype(np.int64)
            segment = buf[segment_start:write]
            visited[segment] = False
            segment.sort()
            roots[j] = root
            edges[j] = edges_examined
            offsets[j + 1] = write
        self._scratch_dirty = False
        return FlatBatch(buf[:write].copy(), offsets, roots, edges)
