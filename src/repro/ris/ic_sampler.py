"""RR-set generation under the IC model: reverse stochastic BFS.

Following Section III-A of the paper, a random RR set under IC is built by

1. picking a root ``v`` uniformly at random,
2. running a BFS from ``v`` that follows *incoming* edges, traversing each
   edge ``<u', u>`` independently with probability ``p_{u',u}``,
3. returning every node the BFS reached (including ``v``).

Each frontier is processed with one vectorised coin-flip batch over all of
its in-edges, which is what makes pure-Python sampling viable on the
scaled datasets.  :meth:`ICReverseBFSSampler.sample_batch` runs the same
reverse BFS over many roots per call, writing wave-at-a-time into one
growing CSR buffer — consuming the RNG stream identically to repeated
:meth:`~ICReverseBFSSampler.sample` calls (differentially tested) while
skipping every per-set Python object.
"""

from __future__ import annotations

import numpy as np

from ..graphs.digraph import DirectedGraph
from .rrset import FlatBatch, RRSample, RRSampler

__all__ = ["ICReverseBFSSampler"]


def _grow(buffer: np.ndarray, used: int, needed: int) -> np.ndarray:
    """Return ``buffer`` (or a doubled copy) with room for ``needed`` items."""
    if needed <= buffer.size:
        return buffer
    # A zero-size buffer would make the doubling loop spin forever.
    capacity = max(buffer.size, 1)
    while capacity < needed:
        capacity *= 2
    grown = np.empty(capacity, dtype=buffer.dtype)
    grown[:used] = buffer[:used]
    return grown


class ICReverseBFSSampler(RRSampler):
    """Stochastic reverse BFS sampler for the IC model.

    Works on plain CSR graphs and on versioned graphs: traversal arrays
    come from ``graph.in_csr()``, and when an overlay is present each
    wave resolves patched in-rows through it.  The coins of a wave are
    mapped to edges in frontier order with each row's order preserved,
    so the RNG stream matches a plain sampler on the compacted graph.
    """

    def __init__(self, graph: DirectedGraph) -> None:
        super().__init__(graph)
        self._indptr, self._indices, self._probs, overlay = graph.in_csr()
        if overlay is None:
            self._ov_lookup = None
            self._ov_indptr = self._ov_indices = self._ov_probs = None
        else:
            (
                self._ov_lookup,
                self._ov_indptr,
                self._ov_indices,
                self._ov_probs,
            ) = overlay
        self._visited = np.zeros(graph.num_nodes, dtype=bool)
        # True while a draw is in flight; a draw that raised mid-BFS leaves
        # it set, and the next draw hard-resets the scratch bitmap instead
        # of trusting the (possibly partial) incremental reset.
        self._scratch_dirty = False
        # Lazy plain-Python indptr copy for sample_batch's single-node
        # frontier fast path (list scalar reads beat numpy scalar reads).
        self._indptr_list: list[int] | None = None
        self._ov_lists: tuple | None = None

    def _reset_scratch(self) -> None:
        if self._scratch_dirty:
            self._visited[:] = False
        self._scratch_dirty = True

    def _frontier_rows(self, frontier: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """``(probs, indices)`` of the frontier's in-edges, frontier order.

        Clean frontiers (no patched row) keep the one-shot vectorised
        gather over the base CSR; a frontier containing patched rows is
        assembled row-by-row so overlay rows substitute their base rows
        in place, preserving the coin-to-edge order.
        """
        lookup = self._ov_lookup
        if lookup is None or not np.any(lookup[frontier] >= 0):
            indptr = self._indptr
            starts = indptr[frontier]
            counts = indptr[frontier + 1] - starts
            ends = counts.cumsum()
            total = int(ends[-1])
            if total == 0:
                return np.zeros(0, dtype=np.float64), np.zeros(0, dtype=np.int32)
            edge_idx = starts.repeat(counts) + (
                np.arange(total) - (ends - counts).repeat(counts)
            )
            return self._probs[edge_idx], self._indices[edge_idx]
        prob_parts = []
        idx_parts = []
        for node in frontier:
            row = int(lookup[node])
            if row >= 0:
                start, stop = self._ov_indptr[row], self._ov_indptr[row + 1]
                prob_parts.append(self._ov_probs[start:stop])
                idx_parts.append(self._ov_indices[start:stop])
            else:
                start, stop = self._indptr[node], self._indptr[node + 1]
                prob_parts.append(self._probs[start:stop])
                idx_parts.append(self._indices[start:stop])
        return np.concatenate(prob_parts), np.concatenate(idx_parts)

    def sample(self, rng: np.random.Generator, root: int | None = None) -> RRSample:
        """Draw one RR set; ``root`` can be pinned for testing."""
        if root is None:
            root = self.sample_root(rng)
        self._reset_scratch()
        visited = self._visited
        collected = [root]
        visited[root] = True
        frontier = np.asarray([root], dtype=np.int64)
        edges_examined = 0

        while frontier.size:
            row_probs, row_indices = self._frontier_rows(frontier)
            total = int(row_probs.size)
            edges_examined += total
            if total == 0:
                break
            success = rng.random(total) < row_probs
            reached = row_indices[success]
            if reached.size == 0:
                break
            reached = np.unique(reached)
            newly = reached[~visited[reached]]
            visited[newly] = True
            collected.extend(int(u) for u in newly)
            frontier = newly.astype(np.int64)

        # Reset the scratch bitmap for the next sample without a full
        # O(n) clear.
        visited[np.asarray(collected, dtype=np.int64)] = False
        self._scratch_dirty = False
        nodes = np.unique(np.asarray(collected, dtype=np.int32))
        return RRSample(nodes=nodes, root=root, edges_examined=edges_examined)

    def sample_batch(self, rng: np.random.Generator, count: int) -> FlatBatch:
        """Draw ``count`` RR sets wave-at-a-time into one flat CSR buffer.

        Bit-identical to ``pack_samples(sample_many(count, rng))``: the
        RNG-visible operations (root draw, one coin-flip batch per
        frontier) are the same sequence; only the bookkeeping around them
        changes — reached nodes land directly in a growing ``int32``
        buffer and each finished segment is sorted in place, so no
        :class:`RRSample`, per-set list, or ``np.unique`` is ever built.
        """
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        n = self.graph.num_nodes
        indices, probs = self._indices, self._probs
        if self._indptr_list is None:
            self._indptr_list = self._indptr.tolist()
        indptr_l = self._indptr_list
        if self._ov_lookup is not None and self._ov_lists is None:
            self._ov_lists = (self._ov_lookup.tolist(), self._ov_indptr.tolist())
        if self._ov_lists is not None:
            ov_lookup_l, ov_indptr_l = self._ov_lists
            ov_indices, ov_probs = self._ov_indices, self._ov_probs
        else:
            ov_lookup_l = None
            ov_indptr_l = ov_indices = ov_probs = None
        self._reset_scratch()
        visited = self._visited
        random = rng.random

        buf = np.empty(max(256, 8 * count), dtype=np.int32)
        offsets = np.zeros(count + 1, dtype=np.int64)
        roots = np.empty(count, dtype=np.int64)
        edges = np.empty(count, dtype=np.int64)
        write = 0
        for j in range(count):
            root = int(rng.integers(0, n))
            segment_start = write
            buf = _grow(buf, write, write + 1)
            buf[write] = root
            write += 1
            visited[root] = True
            # ``single >= 0`` is the one-node-frontier fast path (always
            # taken on the first wave): its in-edges are one contiguous
            # CSR slice, so the repeat/cumsum index construction of the
            # general wave collapses to two array views.  Either branch
            # draws the same ``random(total)`` with coins mapped to edges
            # in the same order, so the RNG stream matches sample().
            single = root
            frontier = np.empty(0, dtype=np.int64)
            edges_examined = 0
            while True:
                if single >= 0:
                    if ov_lookup_l is not None and ov_lookup_l[single] >= 0:
                        row = ov_lookup_l[single]
                        start = ov_indptr_l[row]
                        total = ov_indptr_l[row + 1] - start
                        seg_probs = ov_probs[start : start + total]
                        seg_indices = ov_indices[start : start + total]
                    else:
                        start = indptr_l[single]
                        total = indptr_l[single + 1] - start
                        seg_probs = probs[start : start + total]
                        seg_indices = indices[start : start + total]
                    edges_examined += total
                    if total == 0:
                        break
                    success = random(total) < seg_probs
                    reached = seg_indices[success]
                else:
                    row_probs, row_indices = self._frontier_rows(frontier)
                    total = int(row_probs.size)
                    edges_examined += total
                    if total == 0:
                        break
                    success = random(total) < row_probs
                    reached = row_indices[success]
                if reached.size == 0:
                    break
                # Same set as sample()'s unique-then-filter, computed as
                # filter-then-sorted-dedupe: discard visited nodes first
                # (usually most of them), then sort in place and drop
                # adjacent repeats — cheaper than np.unique per wave.
                cand = reached[~visited[reached]]
                if cand.size == 0:
                    break
                if cand.size > 1:
                    cand.sort()
                    keep = np.empty(cand.size, dtype=bool)
                    keep[0] = True
                    np.not_equal(cand[1:], cand[:-1], out=keep[1:])
                    newly = cand[keep]
                else:
                    newly = cand
                visited[newly] = True
                buf = _grow(buf, write, write + newly.size)
                buf[write : write + newly.size] = newly
                write += newly.size
                if newly.size == 1:
                    single = int(newly[0])
                else:
                    single = -1
                    frontier = newly.astype(np.int64)
            segment = buf[segment_start:write]
            visited[segment] = False
            segment.sort()
            roots[j] = root
            edges[j] = edges_examined
            offsets[j + 1] = write
        self._scratch_dirty = False
        return FlatBatch(buf[:write].copy(), offsets, roots, edges)
