"""RR-set generation under the IC model: reverse stochastic BFS.

Following Section III-A of the paper, a random RR set under IC is built by

1. picking a root ``v`` uniformly at random,
2. running a BFS from ``v`` that follows *incoming* edges, traversing each
   edge ``<u', u>`` independently with probability ``p_{u',u}``,
3. returning every node the BFS reached (including ``v``).

Each frontier is processed with one vectorised coin-flip batch over all of
its in-edges, which is what makes pure-Python sampling viable on the
scaled datasets.
"""

from __future__ import annotations

import numpy as np

from ..graphs.digraph import DirectedGraph
from .rrset import RRSample, RRSampler

__all__ = ["ICReverseBFSSampler"]


class ICReverseBFSSampler(RRSampler):
    """Stochastic reverse BFS sampler for the IC model."""

    def __init__(self, graph: DirectedGraph) -> None:
        super().__init__(graph)
        self._visited = np.zeros(graph.num_nodes, dtype=bool)

    def sample(self, rng: np.random.Generator, root: int | None = None) -> RRSample:
        """Draw one RR set; ``root`` can be pinned for testing."""
        graph = self.graph
        if root is None:
            root = self.sample_root(rng)
        visited = self._visited
        collected = [root]
        visited[root] = True
        frontier = np.asarray([root], dtype=np.int64)
        edges_examined = 0

        indptr, indices, probs = graph.in_indptr, graph.in_indices, graph.in_probs
        try:
            while frontier.size:
                starts = indptr[frontier]
                stops = indptr[frontier + 1]
                counts = stops - starts
                total = int(counts.sum())
                edges_examined += total
                if total == 0:
                    break
                offsets = np.repeat(starts, counts)
                within = np.arange(total) - np.repeat(np.cumsum(counts) - counts, counts)
                edge_idx = offsets + within
                success = rng.random(total) < probs[edge_idx]
                reached = indices[edge_idx[success]]
                if reached.size == 0:
                    break
                reached = np.unique(reached)
                newly = reached[~visited[reached]]
                visited[newly] = True
                collected.extend(int(u) for u in newly)
                frontier = newly.astype(np.int64)
        finally:
            # Reset the scratch bitmap for the next sample without a full
            # O(n) clear.
            visited[np.asarray(collected, dtype=np.int64)] = False

        nodes = np.unique(np.asarray(collected, dtype=np.int32))
        return RRSample(nodes=nodes, root=root, edges_examined=edges_examined)
