"""RR-set generation under the LT model: reverse random walk.

Following Section III-A of the paper, a random RR set under LT is a random
walk from the root over incoming edges.  At the current node ``u`` the walk

* stops with probability ``1 - sum_{u' in N_u^in} p_{u',u}``,
* otherwise steps to an in-neighbor ``u'`` chosen with probability
  proportional to ``p_{u',u}``, and stops if ``u'`` was already visited.

Under the weighted-cascade setting the incoming probabilities sum to one
for every node with in-neighbors, so the walk only terminates by revisiting
a node or hitting an in-degree-zero node — which matches why LT RR sets
stay small (they are simple reverse paths).
"""

from __future__ import annotations

from bisect import bisect_left

import numpy as np

from ..graphs.digraph import DirectedGraph
from .rrset import FlatBatch, RRSample, RRSampler

__all__ = ["LTReverseWalkSampler"]


class LTReverseWalkSampler(RRSampler):
    """Reverse random-walk sampler for the LT model.

    Traversal arrays come from ``graph.in_csr()``; when an overlay is
    present (a :class:`~repro.graphs.digraph.VersionedGraph`) each step
    resolves the current node's row through it, with a second prefix-sum
    table over the overlay's probabilities for the non-uniform branch.
    Note the compaction caveat: the uniform (weighted-cascade) branch
    draws from the row's *degree* alone and matches the compacted graph
    bit-for-bit, while the non-uniform branch accumulates a global float
    prefix sum whose rounding can differ between overlay and compacted
    layouts — equivalence there is distributional, not bitwise.
    """

    def __init__(self, graph: DirectedGraph) -> None:
        super().__init__(graph)
        self._indptr, self._indices, self._in_probs, overlay = graph.in_csr()
        if overlay is None:
            self._ov_lookup = None
            self._ov_indptr = self._ov_indices = self._ov_probs = None
            self._ov_prefix = None
        else:
            (
                self._ov_lookup,
                self._ov_indptr,
                self._ov_indices,
                self._ov_probs,
            ) = overlay
            self._ov_prefix = np.concatenate(([0.0], np.cumsum(self._ov_probs)))
        # Prefix sums of in-probabilities let each walk step pick its
        # in-edge with a single binary search instead of a per-edge scan.
        self._prefix = np.concatenate(([0.0], np.cumsum(self._in_probs)))
        sums = graph.in_probability_sums()
        if sums.size and float(sums.max()) > 1.0 + 1e-9:
            raise ValueError("LT sampler requires incoming probabilities to sum to <= 1")
        self._sums = sums
        # Weighted-cascade fast path: when all in-edges of a node carry the
        # same probability, the step distribution is "stop with 1 - sum,
        # else uniform neighbor", which avoids the binary search.
        indptr, probs = self._indptr, self._in_probs
        self._uniform = np.zeros(graph.num_nodes, dtype=bool)
        for v in range(graph.num_nodes):
            seg = probs[indptr[v] : indptr[v + 1]]
            if seg.size:
                self._uniform[v] = bool(np.all(seg == seg[0]))
        if self._ov_lookup is not None:
            for v in np.flatnonzero(self._ov_lookup >= 0):
                row = int(self._ov_lookup[v])
                seg = self._ov_probs[self._ov_indptr[row] : self._ov_indptr[row + 1]]
                self._uniform[v] = bool(seg.size and np.all(seg == seg[0]))
        # Plain-Python copies of the walk's lookup tables, built lazily by
        # sample_batch: scalar indexing into lists is several times faster
        # than numpy scalar indexing, and the walk is all scalar reads.
        self._list_tables: tuple | None = None

    def _batch_tables(self) -> tuple:
        if self._list_tables is None:
            if self._ov_lookup is None:
                overlay_lists = None
            else:
                overlay_lists = (
                    self._ov_lookup.tolist(),
                    self._ov_indptr.tolist(),
                    self._ov_indices.tolist(),
                    self._ov_prefix.tolist(),
                )
            self._list_tables = (
                self._indptr.tolist(),
                self._indices.tolist(),
                self._prefix.tolist(),
                self._uniform.tolist(),
                self._sums.tolist(),
                overlay_lists,
            )
        return self._list_tables

    def sample(self, rng: np.random.Generator, root: int | None = None) -> RRSample:
        """Draw one RR set; ``root`` can be pinned for testing."""
        indptr, indices = self._indptr, self._indices
        prefix = self._prefix
        ov_lookup = self._ov_lookup
        if root is None:
            root = self.sample_root(rng)

        visited = {root}
        path = [root]
        edges_examined = 0
        current = root
        uniform = self._uniform
        sums = self._sums
        # Uniform draws are consumed in batches: one scalar Generator call
        # per walk step costs more than the step itself.
        buffer = rng.random(64)
        cursor = 0
        while True:
            row = int(ov_lookup[current]) if ov_lookup is not None else -1
            if row >= 0:
                start = int(self._ov_indptr[row])
                stop = int(self._ov_indptr[row + 1])
                step_prefix, step_indices = self._ov_prefix, self._ov_indices
            else:
                start, stop = int(indptr[current]), int(indptr[current + 1])
                step_prefix, step_indices = prefix, indices
            degree = stop - start
            edges_examined += degree
            if degree == 0:
                break
            if cursor >= buffer.size - 1:
                buffer = rng.random(64)
                cursor = 0
            if uniform[current]:
                # Equal in-probabilities: stop with 1 - sum, else uniform.
                total = sums[current]
                if total < 1.0:
                    if buffer[cursor] >= total:
                        cursor += 1
                        break
                    cursor += 1
                edge = start + int(buffer[cursor] * degree)
                cursor += 1
            else:
                threshold = step_prefix[start] + buffer[cursor]
                cursor += 1
                # First in-edge whose cumulative probability reaches the
                # draw; a draw beyond the node's incoming mass means stop.
                edge = int(np.searchsorted(step_prefix, threshold, side="left")) - 1
                if edge >= stop or edge < start:
                    break
            nxt = int(step_indices[edge])
            if nxt in visited:
                break
            visited.add(nxt)
            path.append(nxt)
            current = nxt

        nodes = np.unique(np.asarray(path, dtype=np.int32))
        return RRSample(nodes=nodes, root=root, edges_examined=edges_examined)

    def sample_batch(self, rng: np.random.Generator, count: int) -> FlatBatch:
        """Draw ``count`` reverse walks straight into flat CSR arrays.

        Bit-identical to ``pack_samples(sample_many(count, rng))``: the
        walk below consumes the RNG exactly like :meth:`sample` (one
        fresh 64-draw buffer per root, the same per-step draws), but each
        finished path is sorted in place into a shared ``int32`` buffer —
        a walk never revisits a node, so the sorted path *is* the sorted
        unique node set — skipping the per-set :class:`RRSample`,
        ``np.unique`` and list plumbing.
        """
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        n = self.graph.num_nodes
        indptr, indices, prefix, uniform, sums, overlay_lists = self._batch_tables()
        if overlay_lists is not None:
            ov_lookup, ov_indptr, ov_indices, ov_prefix = overlay_lists
        else:
            ov_lookup = None
            ov_indptr = ov_indices = ov_prefix = None
        random = rng.random

        parts: list[np.ndarray] = []
        offsets = np.zeros(count + 1, dtype=np.int64)
        roots = np.empty(count, dtype=np.int64)
        edges = np.empty(count, dtype=np.int64)
        for j in range(count):
            root = int(rng.integers(0, n))
            visited = {root}
            path = [root]
            edges_examined = 0
            current = root
            # Same buffered-draw protocol as sample(): one fresh 64-draw
            # buffer per root, refilled at the same cursor positions; the
            # tolist() only changes how the draws are *read*.
            buffer = random(64).tolist()
            cursor = 0
            while True:
                row = ov_lookup[current] if ov_lookup is not None else -1
                if row >= 0:
                    start = ov_indptr[row]
                    stop = ov_indptr[row + 1]
                    step_prefix, step_indices = ov_prefix, ov_indices
                else:
                    start = indptr[current]
                    stop = indptr[current + 1]
                    step_prefix, step_indices = prefix, indices
                degree = stop - start
                edges_examined += degree
                if degree == 0:
                    break
                if cursor >= 63:
                    buffer = random(64).tolist()
                    cursor = 0
                if uniform[current]:
                    total = sums[current]
                    if total < 1.0:
                        if buffer[cursor] >= total:
                            cursor += 1
                            break
                        cursor += 1
                    edge = start + int(buffer[cursor] * degree)
                    cursor += 1
                else:
                    threshold = step_prefix[start] + buffer[cursor]
                    cursor += 1
                    edge = bisect_left(step_prefix, threshold) - 1
                    if edge >= stop or edge < start:
                        break
                nxt = step_indices[edge]
                if nxt in visited:
                    break
                visited.add(nxt)
                path.append(nxt)
                current = nxt
            nodes = np.asarray(path, dtype=np.int32)
            nodes.sort()
            parts.append(nodes)
            roots[j] = root
            edges[j] = edges_examined
            offsets[j + 1] = offsets[j] + nodes.size
        nodes = np.concatenate(parts) if parts else np.zeros(0, dtype=np.int32)
        return FlatBatch(nodes, offsets, roots, edges)
