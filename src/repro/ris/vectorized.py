"""Batched frontier kernels: hundreds of RR sets per NumPy call.

The per-set samplers (:mod:`repro.ris.ic_sampler`, :mod:`~repro.ris.lt_sampler`,
:mod:`~repro.ris.triggering_sampler`) vectorise *within* one RR set — one
coin-flip batch per frontier — but still pay Python-level bookkeeping per
set and per wave.  On the scaled datasets an RR set averages only a few
waves of a few nodes each, so that bookkeeping, not the arithmetic,
dominates generation time (the cost every phase plan is built around).

This module ports gIM's batched frontier expansion to the CSR arrays:
a *block* of RR sets advances together, one wave per step, with

* one masked gather over ``in_indptr``/``in_indices`` building the
  in-edge index of the whole block's frontier at once,
* one vectorised Bernoulli batch (IC) or one threshold/categorical draw
  per frontier node (LT / triggering) for every trial of the wave,
* visited-marks kept in a single flat block-scratch bitmap addressed by
  ``set * n + node`` keys, so per-set dedup is one ``np.unique`` over
  integer keys.

The amortised Python overhead per set drops by roughly the block size;
``benchmarks/results/micro_vectorized_generation`` tracks the measured
speedup over :meth:`~repro.ris.rrset.RRSampler.sample_batch` (>= 5x
target on the livejournal-like stand-in, >= 3x CI floor).

RNG contract
------------
Blocking reorders RNG consumption: one ``random(total)`` call now covers
a whole wave of *many* sets, where the per-set path drew per set.  The
draws therefore differ bit-for-bit from ``sample_batch`` in general and
the vectorized samplers are held to the per-set path by the
*statistical-equivalence* harness (``tests/ris/equivalence.py``) instead
of the differential bit-identity suite.  One ordering IS preserved: with
``block_size=1`` the IC kernel visits nodes, maps coins to edges and
draws the root exactly like :class:`~repro.ris.ic_sampler.ICReverseBFSSampler`,
so that configuration is pinned bit-identical
(``tests/ris/test_vectorized_equivalence.py::TestBitIdentity``) — the
anchor proving the kernel computes the *same* process, with the larger
blocks certified distributionally.

Scratch memory is ``block_size * num_nodes`` bytes (one byte per
visited-mark).  When ``block_size`` is not given, each sampler picks one
automatically from the graph size (see :data:`DEFAULT_BLOCK` /
:data:`DEFAULT_SCRATCH_BYTES`); pass an explicit value to trade memory
against per-wave overhead on unusual graphs.
"""

from __future__ import annotations

import numpy as np

from ..diffusion.triggering import (
    ICTriggering,
    LTTriggering,
    TriggeringDistribution,
)
from ..graphs.digraph import DirectedGraph
from .rrset import FlatBatch, RRSample, RRSampler

__all__ = [
    "DEFAULT_BLOCK",
    "VectorizedICSampler",
    "VectorizedLTSampler",
    "VectorizedTriggeringSampler",
]

#: Largest auto-chosen number of RR sets advanced per frontier block.
#: When ``block_size`` is not given, the samplers pick the biggest block
#: whose visited scratch (``block * num_nodes`` bytes) stays within
#: :data:`DEFAULT_SCRATCH_BYTES`, capped here — larger blocks amortise
#: the per-wave NumPy call overhead better but stop paying once the
#: scratch spills out of cache.  A throughput knob, never a correctness
#: one.
DEFAULT_BLOCK = 1024

#: Scratch budget steering the automatic block size.
DEFAULT_SCRATCH_BYTES = 64 << 20


def _auto_block(num_nodes: int) -> int:
    return max(64, min(DEFAULT_BLOCK, DEFAULT_SCRATCH_BYTES // max(num_nodes, 1)))


class _BlockedFrontierSampler(RRSampler):
    """Shared plumbing of the vectorized samplers.

    Subclasses implement :meth:`_run_block`, which advances one block of
    pinned roots to completion and returns the block's flat results.
    Everything else — block scheduling, scratch lifetime, the
    :class:`~repro.ris.rrset.RRSample`/:class:`~repro.ris.rrset.FlatBatch`
    packaging — lives here.
    """

    def __init__(self, graph: DirectedGraph, block_size: int | None = None) -> None:
        super().__init__(graph)
        if block_size is None:
            block_size = _auto_block(graph.num_nodes)
        if block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {block_size}")
        self.block_size = int(block_size)
        # One flat visited bitmap for the whole block, addressed by
        # ``set * n + node``; allocated lazily on the first draw.
        self._visited: np.ndarray | None = None
        # True while a draw is in flight; a draw that raised mid-wave
        # leaves it set and the next draw hard-resets the bitmap instead
        # of trusting the (possibly partial) incremental reset.
        self._scratch_dirty = False

    def _scratch(self) -> np.ndarray:
        if self._visited is None:
            self._visited = np.zeros(self.block_size * self.graph.num_nodes, dtype=bool)
        if self._scratch_dirty:
            self._visited[:] = False
        self._scratch_dirty = True
        return self._visited

    def _run_block(
        self, rng: np.random.Generator, roots: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Advance ``roots.size <= block_size`` RR sets to completion.

        Returns ``(nodes, sizes, edges_examined)`` where ``nodes`` is the
        int32 concatenation of the block's sets (each sorted ascending)
        and ``sizes``/``edges_examined`` are per-set int64 arrays.
        """
        raise NotImplementedError

    def sample(self, rng: np.random.Generator, root: int | None = None) -> RRSample:
        """Draw one RR set; ``root`` can be pinned for testing."""
        if root is None:
            root = self.sample_root(rng)
        nodes, sizes, edges = self._run_block(rng, np.asarray([root], dtype=np.int64))
        return RRSample(nodes=nodes, root=int(root), edges_examined=int(edges[0]))

    def sample_batch(self, rng: np.random.Generator, count: int) -> FlatBatch:
        """Draw ``count`` RR sets, ``block_size`` at a time."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        n = self.graph.num_nodes
        parts: list[np.ndarray] = []
        sizes_parts: list[np.ndarray] = []
        roots_parts: list[np.ndarray] = []
        edges_parts: list[np.ndarray] = []
        done = 0
        while done < count:
            block = min(self.block_size, count - done)
            roots = rng.integers(0, n, size=block).astype(np.int64, copy=False)
            nodes, sizes, edges = self._run_block(rng, roots)
            parts.append(nodes)
            sizes_parts.append(sizes)
            roots_parts.append(roots)
            edges_parts.append(edges)
            done += block
        return self._pack(count, parts, sizes_parts, roots_parts, edges_parts)

    def sample_batch_rooted(self, rng: np.random.Generator, roots) -> FlatBatch:
        """Draw one RR set per pinned root (the property-test entry point).

        Identical to :meth:`sample_batch` except the uniform root draws
        are replaced by the given roots; the equivalence and property
        suites use it to condition size/membership distributions on a
        root without burning samples on rejection.
        """
        roots = np.asarray(roots, dtype=np.int64)
        if roots.ndim != 1:
            raise ValueError("roots must be a 1-D array of node ids")
        if roots.size and (int(roots.min()) < 0 or int(roots.max()) >= self.graph.num_nodes):
            raise ValueError(f"roots must lie in [0, {self.graph.num_nodes})")
        parts, sizes_parts, roots_parts, edges_parts = [], [], [], []
        for start in range(0, roots.size, self.block_size):
            block_roots = roots[start : start + self.block_size]
            nodes, sizes, edges = self._run_block(rng, block_roots)
            parts.append(nodes)
            sizes_parts.append(sizes)
            roots_parts.append(block_roots)
            edges_parts.append(edges)
        return self._pack(int(roots.size), parts, sizes_parts, roots_parts, edges_parts)

    @staticmethod
    def _pack(count, parts, sizes_parts, roots_parts, edges_parts) -> FlatBatch:
        offsets = np.zeros(count + 1, dtype=np.int64)
        if count:
            np.cumsum(np.concatenate(sizes_parts), out=offsets[1:])
            nodes = np.concatenate(parts).astype(np.int32, copy=False)
            roots = np.concatenate(roots_parts)
            edges = np.concatenate(edges_parts)
        else:
            nodes = np.zeros(0, dtype=np.int32)
            roots = np.zeros(0, dtype=np.int64)
            edges = np.zeros(0, dtype=np.int64)
        return FlatBatch(nodes, offsets, roots, edges)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(graph={self.graph!r}, block_size={self.block_size})"
        )


def _finish_block(
    visited: np.ndarray,
    num_sets: int,
    num_nodes: int,
    set_parts: list[np.ndarray],
    node_parts: list[np.ndarray],
) -> tuple[np.ndarray, np.ndarray]:
    """Sort a block's collected (set, node) pairs into per-set segments.

    Clears the touched visited-marks (the incremental scratch reset) and
    returns ``(nodes, sizes)``: the int32 concatenation with every set's
    nodes ascending, plus per-set sizes.
    """
    all_sets = np.concatenate(set_parts)
    all_nodes = np.concatenate(node_parts)
    keys = all_sets * num_nodes + all_nodes
    visited[keys] = False
    order = np.argsort(keys, kind="stable")
    sizes = np.bincount(all_sets, minlength=num_sets).astype(np.int64, copy=False)
    return all_nodes[order].astype(np.int32), sizes


class VectorizedICSampler(_BlockedFrontierSampler):
    """Blocked reverse-BFS frontier kernel for the IC model.

    Each wave gathers the in-edges of every (set, node) frontier pair in
    the block, draws one Bernoulli batch over all of them, and folds the
    successful sources back through the visited bitmap.  With
    ``block_size=1`` the wave structure, edge ordering and draw counts
    collapse to exactly :class:`~repro.ris.ic_sampler.ICReverseBFSSampler`'s,
    making that configuration bit-identical to the per-set path.
    """

    def __init__(self, graph: DirectedGraph, block_size: int | None = None) -> None:
        super().__init__(graph, block_size=block_size)
        # Per-node uniform-probability fast path (weighted-cascade and
        # uniform graphs): when every in-edge of every node carries its
        # node's single probability, the wave's trial probabilities are a
        # frontier-sized repeat instead of an edge-index gather, and the
        # edge index itself only needs materialising at the successes.
        # The trial values and draw order are unchanged, so the block=1
        # bit-identity anchor holds on both paths.
        indptr, probs = graph.in_indptr, graph.in_probs
        degrees = np.diff(indptr)
        node_prob = np.zeros(graph.num_nodes, dtype=probs.dtype)
        nonzero = degrees > 0
        node_prob[nonzero] = probs[indptr[:-1][nonzero]]
        self._node_prob: np.ndarray | None = None
        if np.array_equal(np.repeat(node_prob, degrees), probs):
            self._node_prob = node_prob

    def _run_block(
        self, rng: np.random.Generator, roots: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        graph = self.graph
        n = graph.num_nodes
        indptr, indices, probs = graph.in_indptr, graph.in_indices, graph.in_probs
        num_sets = roots.size
        visited = self._scratch()

        front_sets = np.arange(num_sets, dtype=np.int64)
        front_nodes = roots
        visited[front_sets * n + front_nodes] = True
        set_parts = [front_sets]
        node_parts = [front_nodes]
        edges = np.zeros(num_sets, dtype=np.int64)

        while front_nodes.size:
            starts = indptr[front_nodes]
            counts = indptr[front_nodes + 1] - starts
            ends = counts.cumsum()
            total = int(ends[-1])
            # bincount's float accumulator is exact for edge totals < 2^53.
            edges += np.bincount(front_sets, weights=counts, minlength=num_sets).astype(
                np.int64
            )
            if total == 0:
                break
            if self._node_prob is not None:
                # Uniform-per-node probabilities: repeat them over each
                # node's edge run — same values rng.random is compared
                # against, no per-edge gather, no full edge index.
                trial_probs = np.repeat(self._node_prob[front_nodes], counts)
                hit = np.flatnonzero(rng.random(total) < trial_probs)
                if hit.size == 0:
                    break
                # Edges of frontier entry j occupy
                # [ends[j]-counts[j], ends[j]), so the owning entry of a
                # hit position is one searchsorted, and its CSR edge id
                # is the position shifted by the entry's wave offset.
                owner_idx = np.searchsorted(ends, hit, side="right")
                reached = indices[starts[owner_idx] + counts[owner_idx] - ends[owner_idx] + hit]
                owners = front_sets[owner_idx]
            else:
                # starts[j] - wave offset of node j, repeated over its
                # edges, plus a running arange == the CSR index of every
                # edge in the wave (identical values to per-node slices,
                # one pass each).  CSR edge ids fit int32 on every graph
                # the int32-id layout admits unless the edge count itself
                # overflows; halve the bandwidth of the widest arrays
                # when they do.
                dt = np.int64 if (total >> 31) or (indices.size >> 31) else np.int32
                edge_idx = np.repeat((starts + counts - ends).astype(dt), counts) + np.arange(
                    total, dtype=dt
                )
                hit = np.flatnonzero(rng.random(total) < probs[edge_idx])
                if hit.size == 0:
                    break
                reached = indices[edge_idx[hit]]
                owners = front_sets[np.searchsorted(ends, hit, side="right")]
            cand_keys = owners * n + reached
            cand_keys = cand_keys[~visited[cand_keys]]
            if cand_keys.size == 0:
                break
            # Sorted dedup by hand: same result as np.unique with a
            # fraction of its per-call overhead (this runs every wave).
            cand_keys.sort()
            keep = np.empty(cand_keys.size, dtype=bool)
            keep[0] = True
            np.not_equal(cand_keys[1:], cand_keys[:-1], out=keep[1:])
            new_keys = cand_keys[keep]
            visited[new_keys] = True
            front_sets = new_keys // n
            front_nodes = new_keys - front_sets * n
            set_parts.append(front_sets)
            node_parts.append(front_nodes)

        nodes, sizes = _finish_block(visited, num_sets, n, set_parts, node_parts)
        self._scratch_dirty = False
        return nodes, sizes, edges


class VectorizedLTSampler(_BlockedFrontierSampler):
    """Lockstep reverse random walks for the LT model.

    All walks of a block advance one step per iteration: in-degree
    gathers, stop/step decisions and revisit checks are single array
    operations over the still-active walks.  Each step draws two
    uniforms per active walk (stop trial + neighbor pick) where the
    scalar walk draws one or two depending on the node — the extra
    independent draw changes the consumed stream, never the
    distribution, so this path is certified by the statistical harness.
    """

    def __init__(self, graph: DirectedGraph, block_size: int | None = None) -> None:
        if block_size is None:
            # Lockstep walks advance one node per set per wave, so the
            # wave count — not cache pressure on the sparsely-touched
            # visited scratch — bounds throughput; a larger block
            # amortises the per-wave call overhead over more walks.
            block_size = 4 * _auto_block(graph.num_nodes)
        super().__init__(graph, block_size=block_size)
        sums = graph.in_probability_sums()
        if sums.size and float(sums.max()) > 1.0 + 1e-9:
            raise ValueError("LT sampler requires incoming probabilities to sum to <= 1")
        self._sums = sums
        # Global prefix sums of in-probabilities: one vectorised
        # searchsorted resolves every non-uniform walk step of a wave.
        self._prefix = np.concatenate(([0.0], np.cumsum(graph.in_probs)))
        # Weighted-cascade fast path, per node: equal in-probabilities
        # mean "stop w.p. 1 - sum, else uniform neighbor".
        indptr, probs = graph.in_indptr, graph.in_probs
        uniform = np.zeros(graph.num_nodes, dtype=bool)
        for v in range(graph.num_nodes):
            seg = probs[indptr[v] : indptr[v + 1]]
            if seg.size:
                uniform[v] = bool(np.all(seg == seg[0]))
        self._uniform = uniform

    def _run_block(
        self, rng: np.random.Generator, roots: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        graph = self.graph
        n = graph.num_nodes
        indptr, indices = graph.in_indptr, graph.in_indices
        prefix, uniform, sums = self._prefix, self._uniform, self._sums
        num_sets = roots.size
        visited = self._scratch()

        walk_sets = np.arange(num_sets, dtype=np.int64)
        current = roots.copy()
        visited[walk_sets * n + current] = True
        set_parts = [walk_sets]
        node_parts = [roots]
        edges = np.zeros(num_sets, dtype=np.int64)

        while current.size:
            starts = indptr[current]
            degrees = indptr[current + 1] - starts
            # One walk per set: no duplicate indices, plain fancy add.
            edges[walk_sets] += degrees
            alive = degrees > 0
            if not alive.any():
                break
            walk_sets, current = walk_sets[alive], current[alive]
            starts, degrees = starts[alive], degrees[alive]

            stop_draw = rng.random(current.size)
            pick_draw = rng.random(current.size)
            is_uniform = uniform[current]
            totals = sums[current]
            # Uniform nodes: stop when the stop trial exceeds the
            # incoming mass, else pick a neighbor uniformly.
            survive = ~is_uniform | (totals >= 1.0) | (stop_draw < totals)
            edge = starts + (pick_draw * degrees).astype(np.int64)
            # Non-uniform nodes: one threshold draw into the global
            # prefix; a draw beyond the node's incoming mass means stop.
            nonuni = ~is_uniform
            if nonuni.any():
                thresholds = prefix[starts[nonuni]] + pick_draw[nonuni]
                found = np.searchsorted(prefix, thresholds, side="left") - 1
                edge[nonuni] = found
                in_range = (found >= starts[nonuni]) & (found < starts[nonuni] + degrees[nonuni])
                survive_nonuni = survive[nonuni] & in_range
                survive = survive.copy()
                survive[nonuni] = survive_nonuni
            if not survive.any():
                break
            walk_sets, edge = walk_sets[survive], edge[survive]
            nxt = indices[edge].astype(np.int64)
            keys = walk_sets * n + nxt
            fresh = ~visited[keys]
            if not fresh.any():
                break
            walk_sets, nxt, keys = walk_sets[fresh], nxt[fresh], keys[fresh]
            visited[keys] = True
            set_parts.append(walk_sets)
            node_parts.append(nxt)
            current = nxt

        nodes, sizes = _finish_block(visited, num_sets, n, set_parts, node_parts)
        self._scratch_dirty = False
        return nodes, sizes, edges


class VectorizedTriggeringSampler(_BlockedFrontierSampler):
    """Blocked frontier kernel for the triggering model.

    Dispatches on the distribution: :class:`ICTriggering` runs the IC
    Bernoulli wave kernel, :class:`LTTriggering` the categorical walk
    kernel (an LT triggering set has at most one in-neighbor, so the
    reverse BFS degenerates to the reverse walk — the distributions
    coincide, as the per-set samplers' tests already establish).
    Arbitrary distributions have no batched trial form and must use
    :class:`~repro.ris.triggering_sampler.TriggeringRRSampler`.
    """

    def __init__(
        self,
        graph: DirectedGraph,
        distribution: TriggeringDistribution,
        block_size: int | None = None,
    ) -> None:
        super().__init__(graph, block_size=block_size)
        self.distribution = distribution
        if isinstance(distribution, ICTriggering):
            self._kernel = VectorizedICSampler(graph, block_size=block_size)
        elif isinstance(distribution, LTTriggering):
            self._kernel = VectorizedLTSampler(graph, block_size=block_size)
        else:
            raise ValueError(
                "vectorized triggering supports ICTriggering and LTTriggering "
                f"distributions only, got {type(distribution).__name__}; use "
                "TriggeringRRSampler for arbitrary distributions"
            )
        # The kernel owns the scratch; keep the outer blocking in step
        # with whatever block size it auto-selected.
        self.block_size = self._kernel.block_size

    def _run_block(
        self, rng: np.random.Generator, roots: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        return self._kernel._run_block(rng, roots)

    def __repr__(self) -> str:
        return (
            f"VectorizedTriggeringSampler(graph={self.graph!r}, "
            f"distribution={type(self.distribution).__name__}, "
            f"block_size={self.block_size})"
        )
