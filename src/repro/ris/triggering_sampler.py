"""RR-set generation under the general triggering model.

Definition 1 and Lemma 3 of the paper are stated for the *triggering
model*, which subsumes IC and LT.  This sampler implements the
definition literally for any :class:`TriggeringDistribution`: walk
backwards from a uniform root, and at each newly visited node sample its
live in-edges from the node's triggering distribution.

Sampling lazily (only for visited nodes) is distributionally identical
to sampling the whole live-edge graph up front, because triggering sets
are independent across nodes — the specialised IC and LT samplers are
just optimised versions of this one, and the tests hold all three to the
same empirical distribution.
"""

from __future__ import annotations

import numpy as np

from ..diffusion.triggering import (
    ICTriggering,
    LTTriggering,
    TriggeringDistribution,
)
from ..graphs.digraph import DirectedGraph
from .rrset import FlatBatch, RRSample, RRSampler

__all__ = ["TriggeringRRSampler"]


class TriggeringRRSampler(RRSampler):
    """Reverse sampling for an arbitrary triggering distribution.

    Parameters
    ----------
    graph:
        Weighted directed graph.
    distribution:
        The per-node triggering-set sampler; pass
        :class:`~repro.diffusion.triggering.ICTriggering` or
        :class:`~repro.diffusion.triggering.LTTriggering` to recover the
        specialised samplers' distributions exactly.
    """

    def __init__(self, graph: DirectedGraph, distribution: TriggeringDistribution) -> None:
        super().__init__(graph)
        self.distribution = distribution
        self._visited = np.zeros(graph.num_nodes, dtype=bool)
        # True while a draw is in flight; left set by a draw that raised,
        # which makes the next draw hard-reset the scratch bitmap.
        self._scratch_dirty = False

    def _reset_scratch(self) -> None:
        if self._scratch_dirty:
            self._visited[:] = False
        self._scratch_dirty = True

    def _live_in_edges(self, node: int, rng: np.random.Generator) -> np.ndarray:
        """Sources of the live in-edges of one node (its triggering set)."""
        graph = self.graph
        start, stop = int(graph.in_indptr[node]), int(graph.in_indptr[node + 1])
        if start == stop:
            return np.empty(0, dtype=np.int64)
        probs = graph.in_probs[start:stop]
        sources = graph.in_indices[start:stop]
        if isinstance(self.distribution, ICTriggering):
            live = rng.random(stop - start) < probs
            return sources[live].astype(np.int64)
        if isinstance(self.distribution, LTTriggering):
            draw = float(rng.random())
            cumulative = np.cumsum(probs)
            position = int(np.searchsorted(cumulative, draw, side="left"))
            if position >= probs.size:
                return np.empty(0, dtype=np.int64)
            return np.asarray([sources[position]], dtype=np.int64)
        # Generic fallback: let the distribution sample the whole live-edge
        # graph and filter this node's in-edges.  Correct for any
        # distribution, at full-graph sampling cost per visited node.
        live_sources, live_targets = self.distribution.sample_live_edges(
            graph, rng
        )
        return live_sources[live_targets == node].astype(np.int64)

    def sample(self, rng: np.random.Generator, root: int | None = None) -> RRSample:
        """Draw one RR set; ``root`` can be pinned for testing."""
        graph = self.graph
        if root is None:
            root = self.sample_root(rng)
        self._reset_scratch()
        visited = self._visited
        collected = [root]
        visited[root] = True
        queue = [root]
        edges_examined = 0
        while queue:
            node = queue.pop()
            edges_examined += graph.in_degree(node)
            for source in self._live_in_edges(node, rng):
                source = int(source)
                if not visited[source]:
                    visited[source] = True
                    collected.append(source)
                    queue.append(source)
        visited[np.asarray(collected, dtype=np.int64)] = False
        self._scratch_dirty = False
        nodes = np.unique(np.asarray(collected, dtype=np.int32))
        return RRSample(nodes=nodes, root=root, edges_examined=edges_examined)

    def sample_batch(self, rng: np.random.Generator, count: int) -> FlatBatch:
        """Draw ``count`` RR sets straight into flat CSR arrays.

        Bit-identical to ``pack_samples(sample_many(count, rng))``: the
        backward exploration visits nodes in the same LIFO order and
        calls the triggering distribution with the same RNG stream; only
        the per-set packaging (sorting the collected segment in place
        instead of ``np.unique`` + :class:`RRSample`) differs.
        """
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        graph = self.graph
        n = graph.num_nodes
        self._reset_scratch()
        visited = self._visited

        parts: list[np.ndarray] = []
        offsets = np.zeros(count + 1, dtype=np.int64)
        roots = np.empty(count, dtype=np.int64)
        edges = np.empty(count, dtype=np.int64)
        for j in range(count):
            root = int(rng.integers(0, n))
            collected = [root]
            visited[root] = True
            queue = [root]
            edges_examined = 0
            while queue:
                node = queue.pop()
                edges_examined += graph.in_degree(node)
                for source in self._live_in_edges(node, rng):
                    source = int(source)
                    if not visited[source]:
                        visited[source] = True
                        collected.append(source)
                        queue.append(source)
            nodes = np.asarray(collected, dtype=np.int32)
            visited[nodes] = False
            nodes.sort()
            parts.append(nodes)
            roots[j] = root
            edges[j] = edges_examined
            offsets[j + 1] = offsets[j] + nodes.size
        self._scratch_dirty = False
        nodes = np.concatenate(parts) if parts else np.zeros(0, dtype=np.int32)
        return FlatBatch(nodes, offsets, roots, edges)
