"""SUBSIM-style RR-set generation for the IC model (Guo et al., SIGMOD 2020).

The plain reverse BFS flips one coin per incoming edge of every traversed
node.  SUBSIM's *subset sampling* observes that the indices of successful
in-edges of a node with maximum in-probability ``p_max`` can be generated
directly by geometric jumps of mean ``1/p_max``: the expected work per node
drops from its in-degree to ``1 + (#successes)`` draws (times a rejection
factor when probabilities are non-uniform).

Under the paper's weighted-cascade setting all in-edges of a node share the
probability ``1/indeg``, so no rejection is ever needed and generating an
RR set costs time proportional to its *size* rather than its in-degree
volume — the source of SUBSIM's speedup in Fig. 7.
"""

from __future__ import annotations

import numpy as np

from ..graphs.digraph import DirectedGraph
from .rrset import RRSample, RRSampler

__all__ = ["SubsimSampler"]


class SubsimSampler(RRSampler):
    """Geometric-jump (subset sampling) RR sampler for the IC model.

    Traversal arrays come from ``graph.in_csr()``; when an overlay is
    present (a :class:`~repro.graphs.digraph.VersionedGraph`) the
    geometric jumps walk the *effective* row of each node, so the draw
    sequence matches a plain sampler on the compacted graph.
    """

    def __init__(self, graph: DirectedGraph) -> None:
        super().__init__(graph)
        n = graph.num_nodes
        self._indptr, self._indices, self._probs, overlay = graph.in_csr()
        if overlay is None:
            self._ov_lookup = None
            self._ov_indptr = self._ov_indices = self._ov_probs = None
        else:
            (
                self._ov_lookup,
                self._ov_indptr,
                self._ov_indices,
                self._ov_probs,
            ) = overlay
        self._p_max = np.zeros(n, dtype=np.float64)
        self._uniform = np.zeros(n, dtype=bool)
        indptr, probs = self._indptr, self._probs
        for v in range(n):
            seg = probs[indptr[v] : indptr[v + 1]]
            if seg.size:
                p_max = float(seg.max())
                self._p_max[v] = p_max
                self._uniform[v] = bool(np.all(seg == p_max))
        if self._ov_lookup is not None:
            # Patched rows override whatever the base said about them.
            for v in np.flatnonzero(self._ov_lookup >= 0):
                row = int(self._ov_lookup[v])
                seg = self._ov_probs[self._ov_indptr[row] : self._ov_indptr[row + 1]]
                if seg.size:
                    p_max = float(seg.max())
                    self._p_max[v] = p_max
                    self._uniform[v] = bool(np.all(seg == p_max))
                else:
                    self._p_max[v] = 0.0
                    self._uniform[v] = False
        self._visited = np.zeros(n, dtype=bool)
        # True while a draw is in flight; left set by a draw that raised,
        # which makes the next draw hard-reset the scratch bitmap.
        self._scratch_dirty = False

    def _reset_scratch(self) -> None:
        if self._scratch_dirty:
            self._visited[:] = False
        self._scratch_dirty = True

    def _row(self, node: int) -> tuple[np.ndarray, np.ndarray]:
        """Effective in-row ``(indices, probs)`` of ``node``."""
        lookup = self._ov_lookup
        if lookup is not None:
            row = int(lookup[node])
            if row >= 0:
                start, stop = self._ov_indptr[row], self._ov_indptr[row + 1]
                return self._ov_indices[start:stop], self._ov_probs[start:stop]
        start, stop = self._indptr[node], self._indptr[node + 1]
        return self._indices[start:stop], self._probs[start:stop]

    def _successful_in_edges(
        self,
        node: int,
        rng: np.random.Generator,
    ) -> tuple[np.ndarray | list[int], int]:
        """In-neighbors of ``node`` whose edges came up live.

        Returns ``(neighbors, draws)`` where ``draws`` counts the random
        positions visited — the sampler's actual work for this node.
        """
        row_indices, row_probs = self._row(node)
        degree = int(row_indices.size)
        if degree == 0:
            return (), 0
        p_max = self._p_max[node]
        if p_max <= 0.0:
            return (), 0
        if p_max >= 1.0:
            # Every edge is a candidate; fall back to direct flips.
            hits = rng.random(degree) < row_probs
            return row_indices[hits], degree
        accepted: list[int] = []
        draws = 0
        position = -1
        uniform = bool(self._uniform[node])
        while True:
            position += int(rng.geometric(p_max))
            draws += 1
            if position >= degree:
                break
            if uniform or rng.random() * p_max < row_probs[position]:
                accepted.append(int(row_indices[position]))
        return accepted, draws

    def sample(self, rng: np.random.Generator, root: int | None = None) -> RRSample:
        """Draw one RR set; ``root`` can be pinned for testing."""
        if root is None:
            root = self.sample_root(rng)
        self._reset_scratch()
        visited = self._visited
        collected = [root]
        visited[root] = True
        queue = [root]
        edges_examined = 0
        while queue:
            node = queue.pop()
            live_neighbors, draws = self._successful_in_edges(node, rng)
            edges_examined += draws
            for neighbor in live_neighbors:
                neighbor = int(neighbor)
                if not visited[neighbor]:
                    visited[neighbor] = True
                    collected.append(neighbor)
                    queue.append(neighbor)
        visited[np.asarray(collected, dtype=np.int64)] = False
        self._scratch_dirty = False
        nodes = np.unique(np.asarray(collected, dtype=np.int32))
        return RRSample(nodes=nodes, root=root, edges_examined=edges_examined)
