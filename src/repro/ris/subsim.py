"""SUBSIM-style RR-set generation for the IC model (Guo et al., SIGMOD 2020).

The plain reverse BFS flips one coin per incoming edge of every traversed
node.  SUBSIM's *subset sampling* observes that the indices of successful
in-edges of a node with maximum in-probability ``p_max`` can be generated
directly by geometric jumps of mean ``1/p_max``: the expected work per node
drops from its in-degree to ``1 + (#successes)`` draws (times a rejection
factor when probabilities are non-uniform).

Under the paper's weighted-cascade setting all in-edges of a node share the
probability ``1/indeg``, so no rejection is ever needed and generating an
RR set costs time proportional to its *size* rather than its in-degree
volume — the source of SUBSIM's speedup in Fig. 7.
"""

from __future__ import annotations

import numpy as np

from ..graphs.digraph import DirectedGraph
from .rrset import RRSample, RRSampler

__all__ = ["SubsimSampler"]


class SubsimSampler(RRSampler):
    """Geometric-jump (subset sampling) RR sampler for the IC model."""

    def __init__(self, graph: DirectedGraph) -> None:
        super().__init__(graph)
        n = graph.num_nodes
        self._p_max = np.zeros(n, dtype=np.float64)
        self._uniform = np.zeros(n, dtype=bool)
        indptr, probs = graph.in_indptr, graph.in_probs
        for v in range(n):
            seg = probs[indptr[v] : indptr[v + 1]]
            if seg.size:
                p_max = float(seg.max())
                self._p_max[v] = p_max
                self._uniform[v] = bool(np.all(seg == p_max))
        self._visited = np.zeros(n, dtype=bool)
        # True while a draw is in flight; left set by a draw that raised,
        # which makes the next draw hard-reset the scratch bitmap.
        self._scratch_dirty = False

    def _reset_scratch(self) -> None:
        if self._scratch_dirty:
            self._visited[:] = False
        self._scratch_dirty = True

    def _successful_in_edges(
        self,
        node: int,
        rng: np.random.Generator,
    ) -> tuple[np.ndarray, int]:
        """Indices (into the in-CSR arrays) of live in-edges of ``node``.

        Returns ``(edge_indices, draws)`` where ``draws`` counts the random
        positions visited — the sampler's actual work for this node.
        """
        graph = self.graph
        start = int(graph.in_indptr[node])
        stop = int(graph.in_indptr[node + 1])
        degree = stop - start
        if degree == 0:
            return np.empty(0, dtype=np.int64), 0
        p_max = self._p_max[node]
        if p_max <= 0.0:
            return np.empty(0, dtype=np.int64), 0
        if p_max >= 1.0:
            # Every edge is a candidate; fall back to direct flips.
            seg = graph.in_probs[start:stop]
            hits = np.flatnonzero(rng.random(degree) < seg)
            return hits + start, degree
        accepted: list[int] = []
        draws = 0
        position = -1
        uniform = bool(self._uniform[node])
        probs = graph.in_probs
        while True:
            position += int(rng.geometric(p_max))
            draws += 1
            if position >= degree:
                break
            edge = start + position
            if uniform or rng.random() * p_max < probs[edge]:
                accepted.append(edge)
        return np.asarray(accepted, dtype=np.int64), draws

    def sample(self, rng: np.random.Generator, root: int | None = None) -> RRSample:
        """Draw one RR set; ``root`` can be pinned for testing."""
        graph = self.graph
        if root is None:
            root = self.sample_root(rng)
        self._reset_scratch()
        visited = self._visited
        collected = [root]
        visited[root] = True
        queue = [root]
        edges_examined = 0
        indices = graph.in_indices
        while queue:
            node = queue.pop()
            live_edges, draws = self._successful_in_edges(node, rng)
            edges_examined += draws
            for edge in live_edges:
                neighbor = int(indices[edge])
                if not visited[neighbor]:
                    visited[neighbor] = True
                    collected.append(neighbor)
                    queue.append(neighbor)
        visited[np.asarray(collected, dtype=np.int64)] = False
        self._scratch_dirty = False
        nodes = np.unique(np.asarray(collected, dtype=np.int32))
        return RRSample(nodes=nodes, root=root, edges_examined=edges_examined)
