"""Compressed wire format for RR-set payloads.

The multiprocessing executor ships every generation batch from worker to
master, and the simulated :class:`~repro.cluster.network.NetworkModel`
charges communication time for the same payloads.  Both previously paid
for the raw CSR arrays — 4 bytes per node id plus 8-byte offsets, roots
and edge counts.  RR sets compress extremely well: each set's node ids
are sorted, so consecutive differences are small, and a delta + varint
encoding shrinks a typical id from 4 bytes to 1–2.

Layout
------
A :class:`~repro.ris.rrset.FlatBatch` body is **one** contiguous LEB128
varint stream (7 value bits per byte, high bit = continuation)::

    [ S | length x S | delta x total | root x S | edges_examined x S ]

where ``S`` is the number of sets and ``total`` the summed set sizes.
Within each set the first node id is stored raw and every later id as
the difference from its predecessor (non-negative, since sets are
sorted).  The same scheme, minus roots/edges, serialises the sparse
``(node, count)`` vectors the coverage layer gathers each round::

    [ S | delta(node) x S | count x S ]

Robustness: :func:`decode_varints` refuses streams whose final byte has
the continuation bit set (truncation) or that contain a varint longer
than :data:`MAX_VARINT_BYTES` (corruption), and :func:`decode_batch`
additionally validates that the stream holds exactly the number of
values its own header promises — all surfaced as the
:class:`~repro.ris.serialization.PayloadCorruptionError` the executor's
retry machinery already understands.  The encoded body normally travels
behind :func:`~repro.ris.serialization.pack_message`'s magic/version/
CRC32 frame, so random corruption is caught by the checksum first and
these checks are the defence for the (checksum-colliding or framing-
bypassing) remainder.

Everything here is vectorised: encoding loops over the at most
:data:`MAX_VARINT_BYTES` byte *positions*, never over values, and
decoding reconstructs all values with one ``np.add.reduceat``.
"""

from __future__ import annotations

import numpy as np

from .rrset import FlatBatch
from .serialization import PayloadCorruptionError

__all__ = [
    "MAX_VARINT_BYTES",
    "varint_sizes",
    "encode_varints",
    "decode_varints",
    "encode_batch",
    "decode_batch",
    "encoded_batch_nbytes",
    "tuple_vector_nbytes",
]

#: Longest admissible varint: 10 x 7 value bits covers the uint64 range.
MAX_VARINT_BYTES = 10

#: ``varint_sizes`` thresholds: a value needs ``k+1`` bytes when it is
#: >= 2**(7k).  ``2**63`` must be formed in uint64 — it overflows int64.
_SIZE_THRESHOLDS = np.power(
    np.uint64(2), np.uint64(7) * np.arange(1, MAX_VARINT_BYTES, dtype=np.uint64)
)

_U7F = np.uint64(0x7F)
_SEVEN = np.uint64(7)


def varint_sizes(values: np.ndarray) -> np.ndarray:
    """Encoded byte length of each value (vectorised, no encoding)."""
    values = np.asarray(values, dtype=np.uint64)
    return np.searchsorted(_SIZE_THRESHOLDS, values, side="right").astype(np.int64) + 1


def encode_varints(values: np.ndarray) -> bytes:
    """Encode non-negative integers as one contiguous LEB128 stream."""
    values = np.ascontiguousarray(values, dtype=np.uint64)
    if values.size == 0:
        return b""
    sizes = varint_sizes(values)
    starts = np.zeros(values.size, dtype=np.int64)
    np.cumsum(sizes[:-1], out=starts[1:])
    out = np.empty(starts[-1] + sizes[-1], dtype=np.uint8)
    for position in range(MAX_VARINT_BYTES):
        mask = sizes > position
        if not mask.any():
            break
        chunk = (values[mask] >> (_SEVEN * np.uint64(position))) & _U7F
        continuation = (sizes[mask] > position + 1).astype(np.uint8) << 7
        out[starts[mask] + position] = chunk.astype(np.uint8) | continuation
    return out.tobytes()


def decode_varints(data: bytes | np.ndarray) -> np.ndarray:
    """Decode a LEB128 stream produced by :func:`encode_varints`.

    Raises :class:`PayloadCorruptionError` when the stream ends
    mid-value or contains a varint longer than :data:`MAX_VARINT_BYTES`.
    """
    raw = np.frombuffer(data, dtype=np.uint8) if isinstance(data, bytes) else data
    if raw.size == 0:
        return np.zeros(0, dtype=np.uint64)
    terminators = raw < 0x80
    if not terminators[-1]:
        raise PayloadCorruptionError(
            "varint stream truncated: final byte still has its continuation bit set"
        )
    ends = np.nonzero(terminators)[0]
    starts = np.empty(ends.size, dtype=np.int64)
    starts[0] = 0
    starts[1:] = ends[:-1] + 1
    lengths = ends - starts + 1
    if int(lengths.max()) > MAX_VARINT_BYTES:
        raise PayloadCorruptionError(
            f"varint stream corrupt: value spans {int(lengths.max())} bytes "
            f"(maximum is {MAX_VARINT_BYTES})"
        )
    positions = (np.arange(raw.size, dtype=np.int64) - np.repeat(starts, lengths)).astype(
        np.uint64
    )
    contributions = (raw & np.uint8(0x7F)).astype(np.uint64) << (_SEVEN * positions)
    return np.add.reduceat(contributions, starts)


def _delta_stream(nodes: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Per-set delta coding: first id raw, later ids as differences."""
    deltas = nodes.astype(np.int64, copy=True)
    if deltas.size:
        deltas[1:] -= nodes[:-1]
        set_starts = offsets[:-1][np.diff(offsets) > 0]
        deltas[set_starts] = nodes[set_starts]
    return deltas


def _undelta_stream(deltas: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Invert :func:`_delta_stream` given the per-set lengths."""
    if deltas.size == 0:
        return deltas
    running = np.cumsum(deltas)
    nonempty = lengths[lengths > 0]
    set_starts = np.zeros(nonempty.size, dtype=np.int64)
    np.cumsum(nonempty[:-1], out=set_starts[1:])
    bases = running[set_starts] - deltas[set_starts]
    return running - np.repeat(bases, nonempty)


def _batch_stream(batch: FlatBatch) -> np.ndarray:
    """The batch's value stream in wire order (see module docstring)."""
    lengths = np.diff(batch.offsets)
    deltas = _delta_stream(batch.nodes, batch.offsets)
    stream = np.empty(1 + lengths.size * 3 + deltas.size, dtype=np.uint64)
    stream[0] = lengths.size
    cursor = 1
    for part in (lengths, deltas, batch.roots, batch.edges_examined):
        stream[cursor : cursor + part.size] = part.astype(np.uint64, copy=False)
        cursor += part.size
    return stream


def encode_batch(batch: FlatBatch) -> bytes:
    """Serialise a :class:`FlatBatch` as a delta + varint body."""
    return encode_varints(_batch_stream(batch))


def encoded_batch_nbytes(batch: FlatBatch) -> int:
    """Size in bytes of :func:`encode_batch`'s output, without encoding."""
    return int(varint_sizes(_batch_stream(batch)).sum())


def decode_batch(body: bytes) -> FlatBatch:
    """Invert :func:`encode_batch`, validating the stream's structure."""
    stream = decode_varints(body)
    if stream.size == 0:
        raise PayloadCorruptionError("batch body is empty: missing set-count header")
    count = int(stream[0])
    if 1 + count > stream.size:
        raise PayloadCorruptionError(
            f"batch body declares {count} sets but only holds "
            f"{stream.size - 1} values"
        )
    lengths = stream[1 : 1 + count].astype(np.int64)
    if lengths.size and int(lengths.max(initial=0)) > stream.size:
        raise PayloadCorruptionError("batch body declares a set longer than the stream")
    total = int(lengths.sum())
    expected = 1 + 3 * count + total
    if stream.size != expected:
        raise PayloadCorruptionError(
            f"batch body holds {stream.size} values but its header implies {expected}"
        )
    deltas = stream[1 + count : 1 + count + total].astype(np.int64)
    roots = stream[1 + count + total : 1 + 2 * count + total].astype(np.int64)
    edges = stream[1 + 2 * count + total :].astype(np.int64)
    offsets = np.zeros(count + 1, dtype=np.int64)
    np.cumsum(lengths, out=offsets[1:])
    nodes = _undelta_stream(deltas, lengths).astype(np.int32)
    return FlatBatch(nodes, offsets, roots, edges)


def tuple_vector_nbytes(nodes: np.ndarray, counts: np.ndarray) -> int:
    """Wire size of a sorted sparse ``(node, count)`` vector.

    This is the unit the coverage layer gathers every round; charging
    its delta + varint size (plus the one-varint length header) keeps
    the simulated communication curves consistent with what the real
    data plane would ship.  ``nodes`` must be sorted ascending — both
    coverage backends produce their deltas that way.
    """
    nodes = np.asarray(nodes, dtype=np.int64)
    deltas = nodes.copy()
    if deltas.size:
        deltas[1:] -= nodes[:-1]
    header = int(varint_sizes(np.asarray([nodes.size], dtype=np.uint64))[0])
    if nodes.size == 0:
        return header
    return int(
        header
        + varint_sizes(deltas).sum()
        + varint_sizes(np.asarray(counts, dtype=np.uint64)).sum()
    )
