"""Simulated master-slave cluster: machines, network model, metrics, executors."""

from .cluster import MachineFailure, SimulatedCluster
from .executor import (
    EXECUTORS,
    BroadcastPhase,
    Executor,
    GatherPhase,
    GeneratePhase,
    MapPhase,
    MasterPhase,
    MultiprocessingExecutor,
    PhaseResult,
    SimulatedExecutor,
    as_executor,
    make_executor,
)
from .faults import (
    DEFAULT_RETRY,
    FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    FaultToleranceExceeded,
    PhaseTimeoutError,
    RetryPolicy,
)
from .machine import Machine
from .metrics import (
    COMMUNICATION,
    COMPUTATION,
    GENERATION,
    PhaseRecord,
    RecoveryEvent,
    RunMetrics,
)
from .network import NetworkModel, gigabit_cluster, shared_memory_server
from .parallel import GenerationOutcome, GenerationPool, run_generation_pool
from .tracing import (
    render_timeline,
    summarize_phases,
    summarize_recovery,
    summarize_rounds,
)

__all__ = [
    "SimulatedCluster",
    "MachineFailure",
    "Machine",
    "NetworkModel",
    "gigabit_cluster",
    "shared_memory_server",
    "RunMetrics",
    "PhaseRecord",
    "RecoveryEvent",
    "GENERATION",
    "COMPUTATION",
    "COMMUNICATION",
    "Executor",
    "SimulatedExecutor",
    "MultiprocessingExecutor",
    "GeneratePhase",
    "MapPhase",
    "GatherPhase",
    "BroadcastPhase",
    "MasterPhase",
    "PhaseResult",
    "EXECUTORS",
    "make_executor",
    "as_executor",
    "GenerationOutcome",
    "GenerationPool",
    "run_generation_pool",
    "FaultPlan",
    "FaultSpec",
    "FAULT_KINDS",
    "RetryPolicy",
    "DEFAULT_RETRY",
    "PhaseTimeoutError",
    "FaultToleranceExceeded",
    "summarize_phases",
    "summarize_rounds",
    "summarize_recovery",
    "render_timeline",
]
