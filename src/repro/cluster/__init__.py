"""Simulated master-slave cluster: machines, network model, metrics."""

from .cluster import MachineFailure, SimulatedCluster
from .machine import Machine
from .metrics import COMMUNICATION, COMPUTATION, GENERATION, PhaseRecord, RunMetrics
from .network import NetworkModel, gigabit_cluster, shared_memory_server
from .parallel import generate_batch, generate_parallel, generate_parallel_flat
from .tracing import render_timeline, summarize_phases

__all__ = [
    "SimulatedCluster",
    "MachineFailure",
    "Machine",
    "NetworkModel",
    "gigabit_cluster",
    "shared_memory_server",
    "RunMetrics",
    "PhaseRecord",
    "GENERATION",
    "COMPUTATION",
    "COMMUNICATION",
    "generate_parallel",
    "generate_parallel_flat",
    "generate_batch",
    "summarize_phases",
    "render_timeline",
]
