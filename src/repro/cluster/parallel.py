"""Real multiprocessing backend for distributed RR-set generation.

The simulated cluster meters sequential execution; this module is the
cross-check: it actually fans RR-set generation out over OS processes, the
closest local equivalent of the paper's MPI workers.  Because sampler
state (the graph CSR arrays) is moderately large, each worker process
builds its sampler once in an initializer and reuses it for every batch.

Workers ship their batches back in the flat CSR layout — one contiguous
``int32`` nodes array plus an offsets array per batch — so the IPC cost
is four array pickles per batch instead of one small object per RR set.
:func:`generate_parallel` re-wraps the arrays as :class:`RRSample`
objects for callers that want the reference representation;
:func:`generate_parallel_flat` hands the arrays straight to a
:class:`~repro.ris.flat.FlatRRCollection`, never materialising per-set
Python objects at all.

Only generation is parallelised here — it dominates the running time in
every figure of the paper — while seed selection still runs through
NEWGREEDI on the gathered per-machine collections.
"""

from __future__ import annotations

import multiprocessing as mp
from typing import List, Sequence, Tuple

import numpy as np

from ..graphs.digraph import DirectedGraph
from ..ris import make_sampler
from ..ris.flat import FlatRRCollection
from ..ris.rrset import RRSample

__all__ = ["generate_parallel", "generate_parallel_flat", "generate_batch"]

#: A worker's flat batch: (nodes, offsets, roots, edges_examined).
FlatBatch = Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]

# Worker-process globals, set once by _init_worker.
_WORKER_SAMPLER = None


def _init_worker(graph: DirectedGraph, model: str, method: str) -> None:
    global _WORKER_SAMPLER
    _WORKER_SAMPLER = make_sampler(graph, model=model, method=method)


def _pack_flat(samples: Sequence[RRSample]) -> FlatBatch:
    """Concatenate a batch of samples into the CSR wire format."""
    count = len(samples)
    sizes = np.fromiter((s.nodes.size for s in samples), dtype=np.int64, count=count)
    offsets = np.zeros(count + 1, dtype=np.int64)
    np.cumsum(sizes, out=offsets[1:])
    if count:
        nodes = np.concatenate([s.nodes for s in samples]).astype(np.int32, copy=False)
    else:
        nodes = np.zeros(0, dtype=np.int32)
    roots = np.fromiter((s.root for s in samples), dtype=np.int64, count=count)
    edges = np.fromiter((s.edges_examined for s in samples), dtype=np.int64, count=count)
    return nodes, offsets, roots, edges


def _unpack_flat(batch: FlatBatch) -> List[RRSample]:
    """Re-wrap one flat batch as reference samples (views into the batch)."""
    nodes, offsets, roots, edges = batch
    return [
        RRSample(
            nodes=nodes[offsets[idx] : offsets[idx + 1]],
            root=int(roots[idx]),
            edges_examined=int(edges[idx]),
        )
        for idx in range(offsets.size - 1)
    ]


def _worker_generate(task: Tuple[int, int]) -> FlatBatch:
    count, seed = task
    rng = np.random.default_rng(seed)
    return _pack_flat(_WORKER_SAMPLER.sample_many(count, rng))


def generate_batch(
    graph: DirectedGraph,
    model: str,
    method: str,
    count: int,
    seed: int,
) -> List[RRSample]:
    """Single-process reference used by tests to compare against workers."""
    sampler = make_sampler(graph, model=model, method=method)
    rng = np.random.default_rng(seed)
    return sampler.sample_many(count, rng)


def _run_pool(
    graph: DirectedGraph,
    counts: Sequence[int],
    seeds: Sequence[int],
    model: str,
    method: str,
    processes: int | None,
) -> List[FlatBatch]:
    if len(counts) != len(seeds):
        raise ValueError("counts and seeds must have the same length")
    if not counts:
        return []
    if processes is None:
        processes = min(len(counts), mp.cpu_count())
    ctx = mp.get_context("fork" if "fork" in mp.get_all_start_methods() else "spawn")
    with ctx.Pool(
        processes=processes,
        initializer=_init_worker,
        initargs=(graph, model, method),
    ) as pool:
        return pool.map(_worker_generate, list(zip(counts, seeds)))


def generate_parallel(
    graph: DirectedGraph,
    counts: Sequence[int],
    seeds: Sequence[int],
    model: str = "ic",
    method: str = "bfs",
    processes: int | None = None,
) -> List[List[RRSample]]:
    """Generate RR sets in real OS processes, one batch per machine.

    Parameters
    ----------
    graph:
        Weighted graph shared (copied) into every worker.
    counts, seeds:
        Per-machine batch sizes and RNG seeds; must have equal length.
    model, method:
        Sampler selection, as in :func:`repro.ris.make_sampler`.
    processes:
        Worker-pool size; defaults to ``len(counts)`` capped at CPU count.

    Returns
    -------
    list of per-machine lists of :class:`RRSample`, in machine order.
    """
    batches = _run_pool(graph, counts, seeds, model, method, processes)
    return [_unpack_flat(batch) for batch in batches]


def generate_parallel_flat(
    graph: DirectedGraph,
    counts: Sequence[int],
    seeds: Sequence[int],
    model: str = "ic",
    method: str = "bfs",
    processes: int | None = None,
) -> List[FlatRRCollection]:
    """Like :func:`generate_parallel`, returning flat per-machine stores.

    The worker's CSR batch is appended to each machine's
    :class:`FlatRRCollection` as-is — no per-set Python objects are ever
    created on the master side, which is the cheap path for feeding the
    flat coverage kernel directly.
    """
    batches = _run_pool(graph, counts, seeds, model, method, processes)
    collections: List[FlatRRCollection] = []
    for nodes, offsets, __, edges in batches:
        collection = FlatRRCollection(graph.num_nodes)
        collection.append_arrays(nodes, offsets, edges_examined=int(edges.sum()))
        collections.append(collection)
    return collections
