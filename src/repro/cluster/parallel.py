"""Worker-pool plumbing for the multiprocessing executor.

The simulated cluster meters sequential execution; this module is the
cross-check: it actually fans RR-set generation out over OS processes,
the closest local equivalent of the paper's MPI workers.  Because
sampler state (the graph CSR arrays) is moderately large, each worker
process builds its sampler once in an initializer and reuses it for
every batch.

Workers draw straight into the flat CSR layout via
:meth:`RRSampler.sample_batch <repro.ris.rrset.RRSampler.sample_batch>`,
so the IPC cost is four array pickles per machine instead of one small
object per RR set.  Each worker receives its machine's pickled
:class:`numpy.random.Generator` and returns the advanced bit-generator
state along with the batch, which lets
:class:`~repro.cluster.executor.MultiprocessingExecutor` keep master-side
RNGs bit-identical to the simulated backend.

Only generation is parallelised — it dominates the running time in every
figure of the paper — while seed selection still runs through NEWGREEDI
on the gathered per-machine collections.  This module is deliberately
executor-internal: algorithms go through
:mod:`repro.cluster.executor`, never through the pool directly.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from typing import Any, List, Sequence, Tuple

import numpy as np

from ..graphs.digraph import DirectedGraph
from ..ris import make_sampler
from ..ris.rrset import FlatBatch

__all__ = ["run_generation_pool"]

#: One machine's generation outcome: ``(batch, rng_state, elapsed, error)``.
#: ``error`` is ``None`` on success, otherwise a one-line description and
#: ``batch`` / ``rng_state`` are ``None``.
GenerationOutcome = Tuple[FlatBatch | None, Any, float, str | None]

# Worker-process global, set once by _init_worker.
_WORKER_SAMPLER = None


def _init_worker(graph: DirectedGraph, model: str, method: str) -> None:
    global _WORKER_SAMPLER
    _WORKER_SAMPLER = make_sampler(graph, model=model, method=method)


def _worker_generate(
    task: Tuple[int, int, np.random.Generator],
) -> Tuple[int, FlatBatch | None, Any, float, str | None]:
    machine_id, count, rng = task
    start = time.perf_counter()
    try:
        batch = _WORKER_SAMPLER.sample_batch(rng, count)
    except Exception as exc:  # shipped back; the executor re-raises
        return machine_id, None, None, time.perf_counter() - start, f"{type(exc).__name__}: {exc}"
    state = rng.bit_generator.state
    return machine_id, batch, state, time.perf_counter() - start, None


def run_generation_pool(
    graph: DirectedGraph,
    model: str,
    method: str,
    counts: Sequence[int],
    rngs: Sequence[np.random.Generator],
    processes: int | None = None,
) -> List[GenerationOutcome]:
    """Draw per-machine RR-set batches in a process pool.

    Parameters
    ----------
    graph:
        Weighted graph shared (copied) into every worker.
    counts:
        Per-machine batch sizes.
    rngs:
        Per-machine generators; pickled to the workers with their state,
        so the draws equal what the machines would have drawn locally.
        The callers' generators are NOT advanced — restore the returned
        state onto each machine to stay in sync.
    model, method:
        Sampler selection, as in :func:`repro.ris.make_sampler`.
    processes:
        Worker-pool size; defaults to ``len(counts)`` capped at CPU count.

    Returns
    -------
    One :data:`GenerationOutcome` per machine, in machine order.  Worker
    exceptions are captured per machine, not raised here.
    """
    if len(counts) != len(rngs):
        raise ValueError("counts and rngs must have the same length")
    if not counts:
        return []
    if processes is None:
        processes = min(len(counts), mp.cpu_count())
    ctx = mp.get_context("fork" if "fork" in mp.get_all_start_methods() else "spawn")
    tasks = [(i, int(count), rng) for i, (count, rng) in enumerate(zip(counts, rngs))]
    with ctx.Pool(
        processes=processes,
        initializer=_init_worker,
        initargs=(graph, model, method),
    ) as pool:
        raw = pool.map(_worker_generate, tasks)
    ordered = sorted(raw, key=lambda outcome: outcome[0])
    return [(batch, state, elapsed, error) for _, batch, state, elapsed, error in ordered]
