"""Real multiprocessing backend for distributed RR-set generation.

The simulated cluster meters sequential execution; this module is the
cross-check: it actually fans RR-set generation out over OS processes, the
closest local equivalent of the paper's MPI workers.  Because sampler
state (the graph CSR arrays) is moderately large, each worker process
builds its sampler once in an initializer and reuses it for every batch.

Only generation is parallelised here — it dominates the running time in
every figure of the paper — while seed selection still runs through
NEWGREEDI on the gathered per-machine collections.
"""

from __future__ import annotations

import multiprocessing as mp
from typing import List, Sequence, Tuple

import numpy as np

from ..graphs.digraph import DirectedGraph
from ..ris import make_sampler
from ..ris.rrset import RRSample

__all__ = ["generate_parallel", "generate_batch"]

# Worker-process globals, set once by _init_worker.
_WORKER_SAMPLER = None


def _init_worker(graph: DirectedGraph, model: str, method: str) -> None:
    global _WORKER_SAMPLER
    _WORKER_SAMPLER = make_sampler(graph, model=model, method=method)


def _worker_generate(task: Tuple[int, int]) -> List[Tuple[np.ndarray, int, int]]:
    count, seed = task
    rng = np.random.default_rng(seed)
    samples = _WORKER_SAMPLER.sample_many(count, rng)
    # RRSample is a frozen dataclass of numpy arrays; send plain tuples to
    # keep pickling cheap.
    return [(s.nodes, s.root, s.edges_examined) for s in samples]


def generate_batch(
    graph: DirectedGraph,
    model: str,
    method: str,
    count: int,
    seed: int,
) -> List[RRSample]:
    """Single-process reference used by tests to compare against workers."""
    sampler = make_sampler(graph, model=model, method=method)
    rng = np.random.default_rng(seed)
    return sampler.sample_many(count, rng)


def generate_parallel(
    graph: DirectedGraph,
    counts: Sequence[int],
    seeds: Sequence[int],
    model: str = "ic",
    method: str = "bfs",
    processes: int | None = None,
) -> List[List[RRSample]]:
    """Generate RR sets in real OS processes, one batch per machine.

    Parameters
    ----------
    graph:
        Weighted graph shared (copied) into every worker.
    counts, seeds:
        Per-machine batch sizes and RNG seeds; must have equal length.
    model, method:
        Sampler selection, as in :func:`repro.ris.make_sampler`.
    processes:
        Worker-pool size; defaults to ``len(counts)`` capped at CPU count.

    Returns
    -------
    list of per-machine lists of :class:`RRSample`, in machine order.
    """
    if len(counts) != len(seeds):
        raise ValueError("counts and seeds must have the same length")
    if not counts:
        return []
    if processes is None:
        processes = min(len(counts), mp.cpu_count())
    ctx = mp.get_context("fork" if "fork" in mp.get_all_start_methods() else "spawn")
    with ctx.Pool(
        processes=processes,
        initializer=_init_worker,
        initargs=(graph, model, method),
    ) as pool:
        raw = pool.map(_worker_generate, list(zip(counts, seeds)))
    return [
        [RRSample(nodes=nodes, root=root, edges_examined=edges) for nodes, root, edges in batch]
        for batch in raw
    ]
