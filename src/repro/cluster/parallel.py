"""Worker-pool plumbing for the multiprocessing executor.

The simulated cluster meters sequential execution; this module is the
cross-check: it actually fans RR-set generation out over OS processes,
the closest local equivalent of the paper's MPI workers.  Because
sampler state (the graph CSR arrays) is moderately large, each worker
process builds its sampler once in an initializer and reuses it for
every batch.

Workers draw straight into the flat CSR layout via
:meth:`RRSampler.sample_batch <repro.ris.rrset.RRSampler.sample_batch>`
and return the batch plus their advanced RNG state as a single framed
payload (:func:`repro.ris.serialization.pack_message`: magic, version,
length, CRC32).  The master verifies the frame before unpickling, so a
corrupted payload surfaces as a typed, retryable error instead of wrong
data.  Restoring the returned RNG state keeps master-side generators
bit-identical to the simulated backend.

Results are collected with a deadline (``timeout``): a worker that never
answers — crashed, ``kill -9``'d, or its payload dropped — leaves a
``"timeout: ..."`` outcome for its machine instead of hanging the pool,
which is what the executor's :class:`~repro.cluster.faults.RetryPolicy`
needs to detect and recover from real worker death.  Injected faults
arrive as per-machine *directives* so the fault path is exercised end to
end: ``"crash"`` raises inside the worker, ``"crash-hard"`` SIGKILLs the
worker process, ``"corrupt"`` flips a byte of the framed payload.

Only generation is parallelised — it dominates the running time in every
figure of the paper — while seed selection still runs through NEWGREEDI
on the gathered per-machine collections.  This module is deliberately
executor-internal: algorithms go through
:mod:`repro.cluster.executor`, never through the pool directly.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import signal
import time
from typing import Any, List, Sequence, Tuple

import numpy as np

from ..graphs.digraph import DirectedGraph
from ..ris import make_sampler
from ..ris.rrset import FlatBatch
from ..ris.serialization import (
    MESSAGE_HEADER_BYTES,
    PayloadCorruptionError,
    pack_message,
    unpack_message,
)
from .faults import CORRUPT, CRASH, CRASH_HARD

__all__ = ["run_generation_pool"]

#: One machine's generation outcome: ``(batch, rng_state, elapsed, error)``.
#: ``error`` is ``None`` on success, otherwise a one-line description
#: (prefixed ``"crash:"``, ``"corruption:"`` or ``"timeout:"`` for
#: injected/detected fault kinds) and ``batch`` / ``rng_state`` are ``None``.
GenerationOutcome = Tuple[FlatBatch | None, Any, float, str | None]

# Worker-process global, set once by _init_worker.
_WORKER_SAMPLER = None


def _init_worker(graph: DirectedGraph, model: str, method: str) -> None:
    global _WORKER_SAMPLER
    _WORKER_SAMPLER = make_sampler(graph, model=model, method=method)


def _worker_generate(
    task: Tuple[int, int, np.random.Generator, str | None],
) -> Tuple[int, bytes | None, float, str | None]:
    machine_id, count, rng, directive = task
    start = time.perf_counter()
    if directive == CRASH_HARD:
        # The injected equivalent of `kill -9`: the process dies without
        # returning anything; only the master's deadline notices.
        os.kill(os.getpid(), signal.SIGKILL)
    try:
        if directive == CRASH:
            raise RuntimeError("injected worker crash")
        batch = _WORKER_SAMPLER.sample_batch(rng, count)
        payload = pack_message((batch, rng.bit_generator.state))
    except Exception as exc:  # shipped back; the executor decides recovery
        prefix = "crash: " if directive == CRASH else ""
        return (
            machine_id,
            None,
            time.perf_counter() - start,
            f"{prefix}{type(exc).__name__}: {exc}",
        )
    if directive == CORRUPT and len(payload) > MESSAGE_HEADER_BYTES:
        # Flip one body byte so the CRC32 check fails on arrival.
        corrupted = bytearray(payload)
        corrupted[MESSAGE_HEADER_BYTES] ^= 0xFF
        payload = bytes(corrupted)
    return machine_id, payload, time.perf_counter() - start, None


def run_generation_pool(
    graph: DirectedGraph,
    model: str,
    method: str,
    counts: Sequence[int],
    rngs: Sequence[np.random.Generator],
    processes: int | None = None,
    directives: Sequence[str | None] | None = None,
    timeout: float | None = None,
) -> List[GenerationOutcome]:
    """Draw per-machine RR-set batches in a process pool.

    Parameters
    ----------
    graph:
        Weighted graph shared (copied) into every worker.
    counts:
        Per-machine batch sizes.
    rngs:
        Per-machine generators; pickled to the workers with their state,
        so the draws equal what the machines would have drawn locally.
        The callers' generators are NOT advanced — restore the returned
        state onto each machine to stay in sync.
    model, method:
        Sampler selection, as in :func:`repro.ris.make_sampler`.
    processes:
        Worker-pool size; defaults to ``len(counts)`` capped at CPU count.
    directives:
        Optional per-machine injected-fault directive (``"crash"``,
        ``"crash-hard"``, ``"corrupt"`` or ``None``), in machine order.
    timeout:
        Wall-clock deadline in seconds for the whole phase.  Machines
        whose results have not arrived when it expires get a
        ``"timeout: ..."`` outcome (the pool is terminated); ``None``
        waits forever — a dead worker then hangs, exactly the failure
        mode :class:`~repro.cluster.faults.RetryPolicy.phase_timeout`
        exists to prevent.

    Returns
    -------
    One :data:`GenerationOutcome` per machine, in machine order.  Worker
    exceptions, corrupted payloads and timeouts are captured per machine,
    not raised here.
    """
    if len(counts) != len(rngs):
        raise ValueError("counts and rngs must have the same length")
    if directives is not None and len(directives) != len(counts):
        raise ValueError("directives must have one entry per machine")
    if not counts:
        return []
    if processes is None:
        processes = min(len(counts), mp.cpu_count())
    ctx = mp.get_context("fork" if "fork" in mp.get_all_start_methods() else "spawn")
    tasks = [
        (i, int(count), rng, directives[i] if directives is not None else None)
        for i, (count, rng) in enumerate(zip(counts, rngs))
    ]
    raw: dict[int, Tuple[bytes | None, float, str | None]] = {}
    start = time.monotonic()
    with ctx.Pool(
        processes=processes,
        initializer=_init_worker,
        initargs=(graph, model, method),
    ) as pool:
        pending = pool.imap_unordered(_worker_generate, tasks)
        try:
            for __ in range(len(tasks)):
                if timeout is None:
                    item = pending.next()
                else:
                    remaining = timeout - (time.monotonic() - start)
                    item = pending.next(max(remaining, 1e-3))
                raw[item[0]] = item[1:]
        except mp.TimeoutError:
            pool.terminate()

    outcomes: List[GenerationOutcome] = []
    for machine_id in range(len(tasks)):
        if machine_id not in raw:
            outcomes.append(
                (None, None, timeout or 0.0, f"timeout: no result within {timeout:g}s")
            )
            continue
        payload, elapsed, error = raw[machine_id]
        if error is not None:
            outcomes.append((None, None, elapsed, error))
            continue
        try:
            batch, rng_state = unpack_message(payload)
        except PayloadCorruptionError as exc:
            outcomes.append((None, None, elapsed, f"corruption: {exc}"))
            continue
        outcomes.append((batch, rng_state, elapsed, None))
    return outcomes
