"""Worker-pool plumbing for the multiprocessing executor.

The simulated cluster meters sequential execution; this module is the
cross-check: it actually fans RR-set generation out over OS processes,
the closest local equivalent of the paper's MPI workers.

Data plane
----------
A :class:`GenerationPool` owns its workers and the graph broadcast for
the lifetime of a run instead of paying both costs on every phase:

* **Zero-copy graph broadcast.**  The master exports the graph's six
  CSR arrays into one ``multiprocessing.shared_memory`` block
  (:meth:`DirectedGraph.to_shared <repro.graphs.digraph.DirectedGraph.to_shared>`)
  and ships only the tiny block *spec* to the workers, which attach
  read-only views (:meth:`from_shared
  <repro.graphs.digraph.DirectedGraph.from_shared>`) — no graph copy is
  pickled, which is what makes the ``spawn`` start method affordable.
  When shared memory is unavailable (or ``zero_copy=False``), the pool
  degrades gracefully to the classic copy-based initializer that ships
  the whole graph to every worker.
* **Persistent workers.**  The ``Pool`` is created lazily on the first
  phase and reused for every later one; each worker attaches the graph
  once and caches one sampler per ``(model, method)`` — including the
  blocked ``"vectorized"`` kernels, whose per-worker frontier scratch
  lives in that cache and whose CSR reads go straight against the
  shared-memory graph views.  A phase
  deadline expiry terminates and discards the pool (a dead or hung
  worker may hold a task forever), and the next phase transparently
  starts a fresh one — the recovery path the executor's
  :class:`~repro.cluster.faults.RetryPolicy` drives.
* **Compressed payloads.**  Workers draw straight into the flat CSR
  layout via :meth:`RRSampler.sample_batch
  <repro.ris.rrset.RRSampler.sample_batch>`, encode the batch with the
  delta + varint wire codec (:func:`repro.ris.wire.encode_batch`) and
  return it plus their advanced RNG state as a single framed payload
  (:func:`repro.ris.serialization.pack_message`: magic, version,
  length, CRC32).  The master verifies the frame, then decodes — a
  corrupted payload surfaces as a typed, retryable error instead of
  wrong data, and each outcome carries the actual bytes shipped.

Restoring the returned RNG state keeps master-side generators
bit-identical to the simulated backend, and the decoded batches are
bit-identical to locally drawn ones, so none of this changes results.

Results are collected with a deadline (``timeout``): a worker that never
answers — crashed, ``kill -9``'d, or its payload dropped — leaves a
``"timeout: ..."`` outcome for its machine instead of hanging the pool.
Injected faults arrive as per-machine *directives* so the fault path is
exercised end to end: ``"crash"`` raises inside the worker,
``"crash-hard"`` SIGKILLs the worker process, ``"corrupt"`` flips a byte
of the framed payload.

Only generation is parallelised — it dominates the running time in every
figure of the paper — while seed selection still runs through NEWGREEDI
on the gathered per-machine collections.  This module is deliberately
executor-internal: algorithms go through
:mod:`repro.cluster.executor`, never through the pool directly.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import signal
import time
from typing import Any, Dict, List, NamedTuple, Sequence, Tuple

import numpy as np

from ..graphs.digraph import DirectedGraph, SharedGraphHandle, attach_shared
from ..ris import make_sampler
from ..ris.rrset import FlatBatch, sample_set_range
from ..ris.serialization import (
    MESSAGE_HEADER_BYTES,
    PayloadCorruptionError,
    pack_message,
    unpack_message,
)
from ..ris.wire import decode_batch, encode_batch
from .faults import CORRUPT, CRASH, CRASH_HARD

__all__ = ["GenerationOutcome", "GenerationPool", "run_generation_pool"]

#: Environment override for the pool's start method (``fork``/``spawn``/
#: ``forkserver``); CI uses it to run the whole suite under ``spawn``.
START_METHOD_ENV = "REPRO_MP_START_METHOD"


class GenerationOutcome(NamedTuple):
    """One machine's generation outcome.

    ``error`` is ``None`` on success, otherwise a one-line description
    (prefixed ``"crash:"``, ``"corruption:"`` or ``"timeout:"`` for
    injected/detected fault kinds) and ``batch`` / ``rng_state`` are
    ``None``.  ``nbytes`` is the size of the framed compressed payload
    the worker actually shipped (0 when nothing arrived).
    """

    batch: FlatBatch | None
    rng_state: Any
    elapsed: float
    error: str | None
    nbytes: int = 0


# Worker-process globals, set once by _init_worker and reused across
# every phase the persistent pool serves.
_WORKER_GRAPH: DirectedGraph | None = None
_WORKER_SAMPLERS: Dict[Tuple[str, str], Any] = {}


def _init_worker(graph_or_spec: Any, shared: bool) -> None:
    global _WORKER_GRAPH
    if shared:
        # The spec's "kind" decides whether this is a plain CSR block or a
        # versioned base+overlay export.
        _WORKER_GRAPH = attach_shared(graph_or_spec)
    else:
        _WORKER_GRAPH = graph_or_spec
    _WORKER_SAMPLERS.clear()


def _worker_generate(
    task: Tuple[int, str, str, int, np.random.Generator, str | None],
) -> Tuple[int, bytes | None, float, str | None]:
    machine_id, model, method, count, rng, directive = task
    start = time.perf_counter()
    if directive == CRASH_HARD:
        # The injected equivalent of `kill -9`: the process dies without
        # returning anything; only the master's deadline notices.
        os.kill(os.getpid(), signal.SIGKILL)
    try:
        if directive == CRASH:
            raise RuntimeError("injected worker crash")
        sampler = _WORKER_SAMPLERS.get((model, method))
        if sampler is None:
            sampler = make_sampler(_WORKER_GRAPH, model=model, method=method)
            _WORKER_SAMPLERS[(model, method)] = sampler
        if isinstance(rng, tuple) and rng and rng[0] == "per-set":
            # Per-set token ("per-set", seed, machine_id, start): each RR
            # set comes from its own counter-based substream, so no
            # sequential rng state travels either way.
            __, seed, token_machine, start_index = rng
            batch = sample_set_range(sampler, seed, token_machine, start_index, count)
            payload = pack_message((encode_batch(batch), None))
        else:
            batch = sampler.sample_batch(rng, count)
            payload = pack_message((encode_batch(batch), rng.bit_generator.state))
    except Exception as exc:  # shipped back; the executor decides recovery
        prefix = "crash: " if directive == CRASH else ""
        return (
            machine_id,
            None,
            time.perf_counter() - start,
            f"{prefix}{type(exc).__name__}: {exc}",
        )
    if directive == CORRUPT and len(payload) > MESSAGE_HEADER_BYTES:
        # Flip one body byte so the CRC32 check fails on arrival.
        corrupted = bytearray(payload)
        corrupted[MESSAGE_HEADER_BYTES] ^= 0xFF
        payload = bytes(corrupted)
    return machine_id, payload, time.perf_counter() - start, None


def _resolve_start_method(start_method: str | None) -> str:
    method = start_method or os.environ.get(START_METHOD_ENV) or None
    available = mp.get_all_start_methods()
    if method is None:
        return "fork" if "fork" in available else "spawn"
    if method not in available:
        raise ValueError(
            f"start method {method!r} unavailable on this platform "
            f"(have: {', '.join(available)})"
        )
    return method


class GenerationPool:
    """Persistent worker pool with a zero-copy graph broadcast.

    Parameters
    ----------
    graph:
        Weighted graph the workers sample from.  Broadcast once: through
        a shared-memory block when available, else copied into each
        worker's initializer.
    processes:
        Worker count; defaults to the machine count of the first phase,
        capped at the CPU count.
    start_method:
        ``multiprocessing`` start method; defaults to the
        ``REPRO_MP_START_METHOD`` environment variable, then ``fork``
        where available, else ``spawn``.
    zero_copy:
        ``True`` requires shared memory (raises where unsupported),
        ``False`` forces the copy-based broadcast, ``None`` (default)
        tries shared memory and silently falls back.

    The pool is lazy: workers start on the first :meth:`run` call.  Call
    :meth:`close` (or use the context manager) to reclaim the workers
    and the shared-memory block; ``__del__`` is only a backstop.
    """

    def __init__(
        self,
        graph: DirectedGraph,
        processes: int | None = None,
        start_method: str | None = None,
        zero_copy: bool | None = None,
    ) -> None:
        self.graph = graph
        self.processes = processes
        self.start_method = _resolve_start_method(start_method)
        self._zero_copy_mode = zero_copy
        self._handle: SharedGraphHandle | None = None
        self._pool = None
        self._closed = False

    @property
    def zero_copy(self) -> bool:
        """Whether the pool (next) start uses the shared-memory broadcast.

        ``True`` until a failed shared-memory export flips the pool onto
        the copy-based fallback for good.
        """
        return self._zero_copy_mode is not False

    def _broadcast_args(self) -> Tuple[Any, bool]:
        if self._zero_copy_mode is False:
            return self.graph, False
        if self._handle is None:
            try:
                self._handle = self.graph.to_shared()
            except Exception:
                if self._zero_copy_mode:  # explicitly required
                    raise
                self._zero_copy_mode = False
                return self.graph, False
        return self._handle.spec, True

    def _ensure_pool(self, num_machines: int):
        if self._closed:
            raise RuntimeError("GenerationPool is closed")
        if self._pool is None:
            ctx = mp.get_context(self.start_method)
            processes = self.processes or min(max(num_machines, 1), mp.cpu_count())
            graph_or_spec, shared = self._broadcast_args()
            self._pool = ctx.Pool(
                processes=processes,
                initializer=_init_worker,
                initargs=(graph_or_spec, shared),
            )
        return self._pool

    def _discard_pool(self) -> None:
        """Terminate the workers; the next phase starts a fresh pool."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.terminate()
            pool.join()

    def refresh_graph(self) -> None:
        """Re-broadcast the graph after it mutated in place.

        The shared-memory export is a snapshot, so workers attached to
        it keep sampling the old graph after a
        :class:`~repro.graphs.digraph.GraphDelta` lands.  Discarding the
        workers and the block makes the next phase export the graph's
        current state and start a fresh pool against it.
        """
        self._discard_pool()
        handle, self._handle = self._handle, None
        if handle is not None:
            handle.unlink()

    def run(
        self,
        model: str,
        method: str,
        counts: Sequence[int],
        rngs: Sequence[np.random.Generator],
        directives: Sequence[str | None] | None = None,
        timeout: float | None = None,
    ) -> List[GenerationOutcome]:
        """Draw per-machine RR-set batches on the persistent workers.

        Parameters
        ----------
        model, method:
            Sampler selection, as in :func:`repro.ris.make_sampler`;
            workers cache one sampler per combination.
        counts:
            Per-machine batch sizes.
        rngs:
            Per-machine generators; pickled to the workers with their
            state, so the draws equal what the machines would have drawn
            locally.  The callers' generators are NOT advanced — restore
            the returned state onto each machine to stay in sync.
        directives:
            Optional per-machine injected-fault directive (``"crash"``,
            ``"crash-hard"``, ``"corrupt"`` or ``None``), in machine
            order.
        timeout:
            Wall-clock deadline in seconds for the whole phase.
            Machines whose results have not arrived when it expires get
            a ``"timeout: ..."`` outcome and the worker pool is
            recycled; ``None`` waits forever — a dead worker then
            hangs, exactly the failure mode
            :class:`~repro.cluster.faults.RetryPolicy.phase_timeout`
            exists to prevent.

        Returns
        -------
        One :class:`GenerationOutcome` per machine, in machine order.
        Worker exceptions, corrupted payloads and timeouts are captured
        per machine, not raised here.
        """
        if len(counts) != len(rngs):
            raise ValueError("counts and rngs must have the same length")
        if directives is not None and len(directives) != len(counts):
            raise ValueError("directives must have one entry per machine")
        if not counts:
            return []
        pool = self._ensure_pool(len(counts))
        tasks = [
            (i, model, method, int(count), rng, directives[i] if directives else None)
            for i, (count, rng) in enumerate(zip(counts, rngs))
        ]
        raw: dict[int, Tuple[bytes | None, float, str | None]] = {}
        start = time.monotonic()
        pending = pool.imap_unordered(_worker_generate, tasks)
        try:
            for __ in range(len(tasks)):
                if timeout is None:
                    item = pending.next()
                else:
                    remaining = timeout - (time.monotonic() - start)
                    item = pending.next(max(remaining, 1e-3))
                raw[item[0]] = item[1:]
        except mp.TimeoutError:
            # A worker died or hung mid-task; its task would occupy the
            # pool forever, so recycle the workers.
            self._discard_pool()

        outcomes: List[GenerationOutcome] = []
        for machine_id in range(len(tasks)):
            if machine_id not in raw:
                outcomes.append(
                    GenerationOutcome(
                        None,
                        None,
                        timeout or 0.0,
                        f"timeout: no result within {timeout:g}s",
                    )
                )
                continue
            payload, elapsed, error = raw[machine_id]
            if error is not None:
                outcomes.append(GenerationOutcome(None, None, elapsed, error))
                continue
            nbytes = len(payload)
            try:
                body, rng_state = unpack_message(payload)
                batch = decode_batch(body)
            except PayloadCorruptionError as exc:
                outcomes.append(
                    GenerationOutcome(None, None, elapsed, f"corruption: {exc}", nbytes)
                )
                continue
            outcomes.append(GenerationOutcome(batch, rng_state, elapsed, None, nbytes))
        return outcomes

    def close(self) -> None:
        """Stop the workers and unlink the shared-memory block."""
        self._closed = True
        try:
            self._discard_pool()
        finally:
            handle, self._handle = self._handle, None
            if handle is not None:
                handle.unlink()

    def __enter__(self) -> "GenerationPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:
        state = "closed" if self._closed else ("live" if self._pool else "lazy")
        return (
            f"GenerationPool({self.graph!r}, start_method={self.start_method!r}, "
            f"zero_copy={self.zero_copy}, {state})"
        )


def run_generation_pool(
    graph: DirectedGraph,
    model: str,
    method: str,
    counts: Sequence[int],
    rngs: Sequence[np.random.Generator],
    processes: int | None = None,
    directives: Sequence[str | None] | None = None,
    timeout: float | None = None,
    start_method: str | None = None,
    zero_copy: bool | None = None,
) -> List[GenerationOutcome]:
    """One-shot convenience wrapper: a single phase on a throwaway pool.

    Builds a :class:`GenerationPool` (zero-copy graph broadcast when
    available, copy fallback otherwise), runs one generation phase and
    tears the pool down again.  Executors keep a persistent
    :class:`GenerationPool` instead; this wrapper exists for tests and
    ad-hoc callers that want the old per-call semantics.
    """
    if not counts:
        return []
    with GenerationPool(
        graph, processes=processes, start_method=start_method, zero_copy=zero_copy
    ) as pool:
        return pool.run(
            model, method, counts, rngs, directives=directives, timeout=timeout
        )
