"""The socket backend: logical machines served by TCP workers.

This is the real multi-node counterpart of the multiprocessing pool —
each worker is a process reachable over a persistent TCP connection
(loopback by default, ``host:port`` list for an actual cluster), and
every byte between master and workers travels as a
:func:`~repro.ris.serialization.pack_message` frame read back with the
streaming :func:`~repro.ris.serialization.read_frame` helper.

Protocol
--------
Every message is one CRC32 frame whose payload is an ``(op, seq, body)``
tuple; ``seq`` is a per-connection sequence number the master uses to
match responses to requests, so several machines can be pipelined onto
one connection and answered in any completion order:

``enroll``
    ``{"token", "graph" | "shm_spec" | "path"}`` — the worker loads the
    graph (shipped inline, attached from a shared-memory spec for
    loopback workers, or read from an ``.npz`` on its local disk) and
    caches it under the token; samplers are cached per
    ``(token, model, method)`` exactly like
    :class:`~repro.cluster.parallel.GenerationPool` workers.  Replies
    ``("enrolled", seq, info)``.
``generate``
    ``{"token", "model", "method", "count", "rng", "directive"}`` — the
    worker draws the batch with the shipped RNG (or a per-set token) and
    replies ``("batch", seq, (payload, elapsed))`` where ``payload`` is
    the *same* inner frame the multiprocessing workers produce
    (``pack_message((encode_batch(batch), rng_state))``), so
    ``num_bytes`` accounting stays comparable across backends while
    ``wire_sent`` / ``wire_received`` record the real socket traffic.
    Failures reply ``("error", seq, (message, elapsed))``.
``ping`` / ``shutdown``
    Heartbeat (``pong``) and orderly worker exit (``bye``).

Failure model
-------------
Injected directives exercise every first-class network failure:
``crash`` replies an error, ``crash-hard`` kills the worker process
outright, ``drop`` swallows the response (only the phase deadline
notices), ``corrupt`` flips a byte of the inner payload so its CRC fails
on arrival, and ``disconnect`` severs the connection mid-phase — the
master sees the broken stream *immediately*, re-dials, and retries under
the same :class:`~repro.cluster.faults.RetryPolicy` that governs the
other backends.  The RNG discipline is inherited from
:class:`~repro.cluster.executor.WorkerBackedExecutor`: a machine's
stream only advances when its payload verifies, so collections and seed
sets stay bit-identical to the simulated and multiprocessing executors,
healthy or faulted.

The worker side lives in this module too (:func:`serve_worker`,
exposed as the ``repro worker`` CLI), so a real deployment is just the
same file running on every node.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import socket
import time
import uuid
from collections import OrderedDict
from typing import Any, Dict, List, Tuple

from ..graphs.digraph import DirectedGraph, SharedGraphHandle, attach_shared
from ..graphs.io import load_npz
from ..ris import make_sampler
from ..ris.rrset import sample_set_range
from ..ris.serialization import (
    MESSAGE_HEADER_BYTES,
    FrameTruncatedError,
    PayloadCorruptionError,
    pack_message,
    read_frame,
    unpack_message,
)
from ..ris.wire import decode_batch, encode_batch
from .cluster import SimulatedCluster
from .executor import WorkerBackedExecutor
from .faults import CORRUPT, CRASH, CRASH_HARD, DISCONNECT, DROP, FaultPlan, RetryPolicy
from .parallel import GenerationOutcome, _resolve_start_method
from .spec import SocketSpec

__all__ = ["SocketExecutor", "serve_worker"]

#: Worker-side cap on cached graph enrollments: a long-lived worker
#: serving masters that refresh their graphs should not accumulate
#: attachments forever.
_MAX_ENROLLMENTS = 4


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
class _WorkerState:
    """Graphs and samplers a worker keeps across connections."""

    def __init__(self) -> None:
        self.graphs: "OrderedDict[str, DirectedGraph]" = OrderedDict()
        self.samplers: Dict[Tuple[str, str, str], Any] = {}

    def enroll(self, token: str, graph: DirectedGraph) -> None:
        self.graphs[token] = graph
        self.graphs.move_to_end(token)
        while len(self.graphs) > _MAX_ENROLLMENTS:
            stale, _ = self.graphs.popitem(last=False)
            self.samplers = {
                key: sampler for key, sampler in self.samplers.items() if key[0] != stale
            }

    def sampler(self, token: str, model: str, method: str):
        key = (token, model, method)
        if key not in self.samplers:
            graph = self.graphs.get(token)
            if graph is None:
                raise KeyError(f"unknown enrollment token {token!r}")
            self.samplers[key] = make_sampler(graph, model=model, method=method)
        return self.samplers[key]


def _send_frame(conn: socket.socket, message: Any) -> None:
    conn.sendall(pack_message(message))


def _handle_enroll(state: _WorkerState, seq: int, request: Dict[str, Any]) -> Any:
    token = request["token"]
    try:
        if token not in state.graphs:
            if request.get("graph") is not None:
                graph = request["graph"]
            elif request.get("shm_spec") is not None:
                graph = attach_shared(request["shm_spec"])
            elif request.get("path"):
                graph = load_npz(request["path"])
            else:
                return ("error", seq, (f"unknown token {token!r} and no graph source", 0.0))
            state.enroll(token, graph)
        return ("enrolled", seq, {"num_nodes": state.graphs[token].num_nodes})
    except Exception as exc:  # noqa: BLE001 - shipped back to the master
        return ("error", seq, (f"enroll failed: {type(exc).__name__}: {exc}", 0.0))


def _handle_generate(
    state: _WorkerState, seq: int, request: Dict[str, Any]
) -> Tuple[Any, str | None]:
    """One generation request -> ``(reply, action)``.

    ``reply`` is ``None`` when the directive suppresses the response
    (drop/disconnect); ``action`` is ``"exit"`` (kill the process) or
    ``"disconnect"`` (close this connection) for the matching
    directives.
    """
    directive = request.get("directive")
    if directive == CRASH_HARD:
        # The injected equivalent of `kill -9`: the whole worker process
        # dies, taking its listening socket with it.
        return None, "exit"
    start = time.perf_counter()
    try:
        if directive == CRASH:
            raise RuntimeError("injected worker crash")
        sampler = state.sampler(request["token"], request["model"], request["method"])
        rng = request["rng"]
        count = request["count"]
        if isinstance(rng, tuple) and rng and rng[0] == "per-set":
            __, seed, machine_id, start_index = rng
            batch = sample_set_range(sampler, seed, machine_id, start_index, count)
            payload = pack_message((encode_batch(batch), None))
        else:
            batch = sampler.sample_batch(rng, count)
            payload = pack_message((encode_batch(batch), rng.bit_generator.state))
    except Exception as exc:  # noqa: BLE001 - shipped back to the master
        prefix = "crash: " if directive == CRASH else ""
        message = f"{prefix}{type(exc).__name__}: {exc}"
        return ("error", seq, (message, time.perf_counter() - start)), None
    if directive == CORRUPT and len(payload) > MESSAGE_HEADER_BYTES:
        # Flip one body byte of the *inner* frame: the outer frame (and
        # its seq) stays intact, so the master attributes the CRC failure
        # to the right machine while the stream stays aligned.
        corrupted = bytearray(payload)
        corrupted[MESSAGE_HEADER_BYTES] ^= 0xFF
        payload = bytes(corrupted)
    elapsed = time.perf_counter() - start
    if directive == DROP:
        return None, None
    if directive == DISCONNECT:
        return None, "disconnect"
    return ("batch", seq, (payload, elapsed)), None


def _serve_connection(conn: socket.socket, state: _WorkerState) -> bool:
    """Serve one master connection; returns False on orderly shutdown."""
    try:
        with conn:
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            while True:
                message = read_frame(conn.recv)
                if message is None:
                    return True  # peer hung up; keep serving new dials
                op, seq, body = message
                if op == "shutdown":
                    _send_frame(conn, ("bye", seq, None))
                    return False
                if op == "ping":
                    _send_frame(conn, ("pong", seq, None))
                elif op == "enroll":
                    _send_frame(conn, _handle_enroll(state, seq, body))
                elif op == "generate":
                    reply, action = _handle_generate(state, seq, body)
                    if action == "exit":
                        os._exit(1)
                    if action == "disconnect":
                        return True
                    if reply is not None:
                        _send_frame(conn, reply)
                else:
                    _send_frame(conn, ("error", seq, (f"unknown op {op!r}", 0.0)))
    except (OSError, PayloadCorruptionError):
        # A broken or garbled connection only ends this session; the
        # worker stays up for the master's re-dial.
        return True


def serve_worker(host: str = "127.0.0.1", port: int = 0, *, ready=None) -> int:
    """Run a generation worker: accept master connections until shutdown.

    Binds ``host:port`` (port 0 picks a free one), reports the bound
    port through the optional ``ready`` callable, then serves one
    connection at a time — state (graphs, samplers) persists across
    connections, so a master can drop, re-dial and keep generating
    without re-shipping the graph.  Returns the bound port after an
    orderly ``shutdown`` request.
    """
    server = socket.create_server((host, port))
    bound = server.getsockname()[1]
    if ready is not None:
        ready(bound)
    state = _WorkerState()
    try:
        while True:
            conn, _peer = server.accept()
            if not _serve_connection(conn, state):
                return bound
    finally:
        server.close()


def _worker_entry(host: str, pipe) -> None:
    """Spawn-safe process target: serve and report the bound port."""

    def ready(port: int) -> None:
        pipe.send(port)
        pipe.close()

    serve_worker(host, 0, ready=ready)


# ----------------------------------------------------------------------
# Master side
# ----------------------------------------------------------------------
class _WorkerChannel:
    """One persistent connection to a worker, with wire accounting.

    ``wire_sent`` / ``wire_received`` count every framed byte that
    crossed the socket (requests, responses, enrollment, heartbeats);
    ``round_trips`` counts completed request/response exchanges.  A
    channel owning its worker process (loopback mode) can respawn it
    after a hard kill; external workers can only be re-dialed.
    """

    def __init__(self, index: int, address: Tuple[str, int] | None) -> None:
        self.index = index
        self.address = address
        self.sock: socket.socket | None = None
        self.process: mp.process.BaseProcess | None = None
        self.wire_sent = 0
        self.wire_received = 0
        self.round_trips = 0
        self._seq = 0

    @property
    def owned(self) -> bool:
        return self.address is None or self.process is not None

    def next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def connect(self, address: Tuple[str, int], timeout: float) -> None:
        self.drop()
        self.sock = socket.create_connection(address, timeout=timeout)
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self.sock.settimeout(None)

    def send(self, message: Any, timeout: float | None = None) -> None:
        if self.sock is None:
            raise ConnectionError(f"worker channel {self.index} is not connected")
        data = pack_message(message)
        self.sock.settimeout(timeout)
        try:
            self.sock.sendall(data)
        finally:
            self.sock.settimeout(None)
        self.wire_sent += len(data)

    def recv(self, deadline: float | None = None) -> Any:
        """Read one frame; ``deadline`` is an absolute ``time.monotonic``."""
        if self.sock is None:
            raise ConnectionError(f"worker channel {self.index} is not connected")
        sock = self.sock

        def metered_recv(count: int) -> bytes:
            if deadline is not None:
                sock.settimeout(max(deadline - time.monotonic(), 1e-3))
            chunk = sock.recv(count)
            self.wire_received += len(chunk)
            return chunk

        try:
            return read_frame(metered_recv, eof_ok=False)
        finally:
            sock.settimeout(None)

    def drop(self) -> None:
        """Close the connection (the worker process, if any, lives on)."""
        sock, self.sock = self.sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    def stop_process(self, grace: float = 2.0) -> None:
        process, self.process = self.process, None
        if process is not None:
            process.join(grace)
            if process.is_alive():
                process.terminate()
                process.join(grace)


class SocketExecutor(WorkerBackedExecutor):
    """Generation fanned out to TCP workers (loopback or real nodes).

    With ``spec.addresses`` unset the executor spawns loopback worker
    processes (one per machine by default, capped at the CPU count) and
    enrolls them against the shared-memory graph export; with addresses
    set it dials externally started ``repro worker`` processes and ships
    the graph inline — or names ``spec.graph_path`` so each node loads
    its local copy, the real-cluster deployment mode.

    Machines are pipelined round-robin onto the channels: machine ``i``
    talks over ``channels[i % workers]``, requests for a phase are all
    written before any response is awaited, and responses are matched by
    sequence number, so one connection serves several machines without
    serializing their draws.

    The fault machinery (attempt loops, recovery events, reassignment)
    is inherited from :class:`~repro.cluster.executor.WorkerBackedExecutor`;
    this class contributes real failure *detection*: a broken stream is
    a ``disconnect`` the moment it breaks, an expired
    ``RetryPolicy.phase_timeout`` is a ``timeout``, and a re-dial (plus
    worker respawn for owned processes) precedes the next attempt.
    """

    name = "socket"

    def __init__(
        self,
        cluster: SimulatedCluster,
        graph=None,
        spec: SocketSpec | None = None,
        faults: FaultPlan | None = None,
        retry: RetryPolicy | None = None,
    ) -> None:
        if graph is None:
            raise ValueError("SocketExecutor requires the graph up front")
        super().__init__(cluster, graph, faults=faults, retry=retry)
        self.spec = (spec or SocketSpec()).validate()
        self._channels: List[_WorkerChannel] | None = None
        self._ctx = mp.get_context(_resolve_start_method(self.spec.start_method))
        self._handle: SharedGraphHandle | None = None
        self._zero_copy_mode = self.spec.zero_copy
        self._token = uuid.uuid4().hex
        self._closed = False

    # -- graph broadcast -------------------------------------------------
    def _graph_source(self, channel: _WorkerChannel) -> Dict[str, Any]:
        """The enrollment payload entry describing where the graph lives."""
        if self.spec.graph_path is not None:
            return {"path": self.spec.graph_path}
        if channel.address is not None and channel.process is None:
            # External worker: shared memory does not cross hosts.
            return {"graph": self.graph}
        if self._zero_copy_mode is not False:
            if self._handle is None:
                try:
                    self._handle = self.graph.to_shared()
                except Exception:
                    if self._zero_copy_mode:  # explicitly required
                        raise
                    self._zero_copy_mode = False
                    return {"graph": self.graph}
            return {"shm_spec": self._handle.spec}
        return {"graph": self.graph}

    # -- channel lifecycle -----------------------------------------------
    def _spawn(self, channel: _WorkerChannel) -> None:
        parent, child = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=_worker_entry, args=("127.0.0.1", child), daemon=True
        )
        process.start()
        child.close()
        if not parent.poll(self.spec.connect_timeout):
            process.terminate()
            raise ConnectionError(
                f"spawned worker {channel.index} did not report a port within "
                f"{self.spec.connect_timeout:g}s"
            )
        port = parent.recv()
        parent.close()
        channel.process = process
        channel.address = ("127.0.0.1", port)

    def _ensure_channel(self, channel: _WorkerChannel) -> None:
        """(Re)connect and enroll one channel, respawning a dead worker."""
        if channel.sock is not None:
            return
        if channel.owned:
            # A refused dial and a dead process are the same condition:
            # the connection reset from a killed worker can reach the
            # master *before* the exit is observable via is_alive(), so
            # a failed reconnect to a live-looking process still means
            # respawn.
            if channel.process is not None and channel.process.is_alive():
                try:
                    channel.connect(channel.address, self.spec.connect_timeout)
                except OSError:
                    pass
            if channel.sock is None:
                channel.stop_process()
                self._spawn(channel)
                channel.connect(channel.address, self.spec.connect_timeout)
        else:
            channel.connect(channel.address, self.spec.connect_timeout)
        seq = channel.next_seq()
        channel.send(
            ("enroll", seq, {"token": self._token, **self._graph_source(channel)}),
            timeout=self.spec.connect_timeout,
        )
        deadline = time.monotonic() + self.spec.connect_timeout
        reply = channel.recv(deadline)
        if reply is None or reply[0] != "enrolled" or reply[1] != seq:
            detail = reply[2] if reply and reply[0] == "error" else reply
            channel.drop()
            raise ConnectionError(
                f"worker {channel.index} at {channel.address} refused enrollment: {detail}"
            )
        channel.round_trips += 1

    def _ensure_channels(self) -> List[_WorkerChannel]:
        """The channel list (lazily built; connections dial per use)."""
        if self._closed:
            raise RuntimeError("SocketExecutor is closed")
        if self._channels is None:
            if self.spec.addresses is not None:
                self._channels = [
                    _WorkerChannel(i, address)
                    for i, address in enumerate(self.spec.addresses)
                ]
            else:
                workers = self.spec.workers or min(
                    max(self.num_machines, 1), mp.cpu_count()
                )
                self._channels = [_WorkerChannel(i, None) for i in range(workers)]
        return self._channels

    # -- dispatch ---------------------------------------------------------
    def _dispatch(
        self,
        model: str,
        method: str,
        counts: List[int],
        rngs: List[Any],
        directives: List[str | None] | None = None,
        timeout: float | None = None,
    ) -> List[GenerationOutcome]:
        if not counts:
            return []
        channels = self._ensure_channels()
        deadline = time.monotonic() + timeout if timeout is not None else None
        outcomes: List[GenerationOutcome | None] = [None] * len(counts)
        pending: Dict[_WorkerChannel, Dict[int, int]] = {}

        # Pipeline: write every request before awaiting any response.
        for position, (count, rng) in enumerate(zip(counts, rngs)):
            channel = channels[position % len(channels)]
            request = {
                "token": self._token,
                "model": model,
                "method": method,
                "count": int(count),
                "rng": rng,
                "directive": directives[position] if directives else None,
            }
            try:
                self._ensure_channel(channel)
                seq = channel.next_seq()
                channel.send(("generate", seq, request), timeout=self.spec.connect_timeout)
            except (OSError, ConnectionError) as exc:
                channel.drop()
                outcomes[position] = GenerationOutcome(
                    None, None, 0.0, f"disconnect: {exc}"
                )
                continue
            pending.setdefault(channel, {})[seq] = position

        for channel, waiting in pending.items():
            while waiting:
                try:
                    message = channel.recv(deadline)
                except socket.timeout:
                    for position in waiting.values():
                        outcomes[position] = GenerationOutcome(
                            None,
                            None,
                            timeout or 0.0,
                            f"timeout: no result within {timeout:g}s",
                        )
                    # Late responses could still arrive and desynchronize
                    # seq matching; re-dial before the next use.
                    channel.drop()
                    break
                except (FrameTruncatedError, ConnectionError, OSError) as exc:
                    # The stream broke mid-frame (or at a boundary): the
                    # worker died, was killed, or severed the connection.
                    for position in waiting.values():
                        outcomes[position] = GenerationOutcome(
                            None, None, 0.0, f"disconnect: {exc}"
                        )
                    channel.drop()
                    break
                except PayloadCorruptionError as exc:
                    # read_frame drained the bad frame, so the stream is
                    # still aligned — but the seq is unreadable.  Charge
                    # the oldest outstanding request.
                    oldest = min(waiting)
                    position = waiting.pop(oldest)
                    outcomes[position] = GenerationOutcome(
                        None, None, 0.0, f"corruption: {exc}"
                    )
                    continue
                op, seq, body = message
                position = waiting.pop(seq, None)
                if position is None:
                    continue  # stale straggler from a recycled phase
                channel.round_trips += 1
                if op == "error":
                    error, elapsed = body
                    outcomes[position] = GenerationOutcome(None, None, elapsed, error)
                    continue
                payload, elapsed = body
                nbytes = len(payload)
                try:
                    encoded, rng_state = unpack_message(payload)
                    batch = decode_batch(encoded)
                except PayloadCorruptionError as exc:
                    outcomes[position] = GenerationOutcome(
                        None, None, elapsed, f"corruption: {exc}", nbytes
                    )
                    continue
                outcomes[position] = GenerationOutcome(
                    batch, rng_state, elapsed, None, nbytes
                )
        return [
            outcome
            if outcome is not None
            else GenerationOutcome(None, None, 0.0, "disconnect: no outcome recorded")
            for outcome in outcomes
        ]

    # -- fault-path knobs --------------------------------------------------
    def _directive_for(self, kind: str) -> str:
        # Every kind is first-class over a socket: drop stays a silent
        # non-response (deadline detection), disconnect severs the
        # stream (immediate detection), crash-hard kills the process.
        return kind

    def _wire_mark(self) -> Tuple[int, int, int]:
        channels = self._channels or []
        return (
            sum(c.wire_sent for c in channels),
            sum(c.wire_received for c in channels),
            sum(c.round_trips for c in channels),
        )

    def _wire_extras(self, mark: Tuple[int, int, int]) -> Dict[str, int]:
        sent, received, trips = self._wire_mark()
        return {
            "wire_sent": sent - mark[0],
            "wire_received": received - mark[1],
            "round_trips": trips - mark[2],
        }

    # -- public niceties ---------------------------------------------------
    def heartbeat(self) -> List[float | None]:
        """Ping every worker; per-channel round-trip seconds (None = dead)."""
        latencies: List[float | None] = []
        for channel in self._ensure_channels():
            started = time.monotonic()
            try:
                self._ensure_channel(channel)
                seq = channel.next_seq()
                channel.send(("ping", seq, None), timeout=self.spec.heartbeat_timeout)
                deadline = time.monotonic() + self.spec.heartbeat_timeout
                while True:
                    reply = channel.recv(deadline)
                    if reply[0] == "pong" and reply[1] == seq:
                        break
                channel.round_trips += 1
                latencies.append(time.monotonic() - started)
            except (OSError, ConnectionError, PayloadCorruptionError, socket.timeout):
                channel.drop()
                latencies.append(None)
        return latencies

    def refresh_graph(self) -> None:
        """Re-broadcast the graph after it mutated in place.

        A new enrollment token makes every worker attach the graph's
        current state on its next use; the stale shared-memory export is
        unlinked once no new enrollment can reference it.
        """
        super().refresh_graph()
        self._token = uuid.uuid4().hex
        handle, self._handle = self._handle, None
        # Keep worker processes alive; drop connections so the next phase
        # re-dials and re-enrolls under the new token.
        for channel in self._channels or []:
            channel.drop()
        if handle is not None:
            handle.unlink()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        channels, self._channels = self._channels, None
        for channel in channels or []:
            if channel.process is not None and channel.sock is not None:
                try:
                    channel.send(("shutdown", channel.next_seq(), None), timeout=1.0)
                    channel.recv(time.monotonic() + 1.0)
                except (OSError, ConnectionError, PayloadCorruptionError, socket.timeout):
                    pass
            channel.drop()
            channel.stop_process()
        handle, self._handle = self._handle, None
        if handle is not None:
            handle.unlink()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass
