"""The Executor layer: one phase-plan interface over both backends.

Algorithms (DIIMM, D-SSA, D-SUBSIM, D-OPIM-C) describe each distributed
step as a declarative *phase plan* — generate RR sets, map a work
function, gather, broadcast, or run master-side code — and hand it to an
:class:`Executor`.  The executor decides *how* the phase runs while
keeping the accounting contract identical:

* :class:`SimulatedExecutor` executes machines sequentially on the
  simulated cluster, exactly as the algorithms previously did by calling
  :meth:`SimulatedCluster.map <repro.cluster.cluster.SimulatedCluster.map>`
  directly;
* :class:`MultiprocessingExecutor` fans the generation phase out over
  real OS processes (the closest local equivalent of the paper's MPI
  workers), shipping each machine's private RNG to its worker and
  restoring the advanced RNG state afterwards — so a run is
  reproducible and *identical* to the simulated backend for a fixed
  seed, which the conformance tests pin.

Every phase lands in the cluster's :class:`~repro.cluster.metrics.RunMetrics`
with per-machine times (scaled by each machine's ``slowdown``) and byte
counts, whichever executor ran it.

Fault tolerance
---------------
Passing a :class:`~repro.cluster.faults.FaultPlan` (even an empty one)
switches generation onto the fault-tolerant path: every machine's RNG is
snapshotted before each attempt, injected faults fire per
``(machine, round, attempt)``, and the :class:`~repro.cluster.faults.RetryPolicy`
governs retries, backoff, timeouts and quota reassignment.  Because a
failed attempt restores the pre-attempt snapshot and a reassigned quota
replays the dead machine's stream, the final collections — and therefore
the selected seeds — are bit-identical to a fault-free run; only the
metered times and the recovery log differ.  ``faults=None`` (default)
takes the original code path untouched.
"""

from __future__ import annotations

import dataclasses
import time
import warnings
from abc import ABC, abstractmethod
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Tuple

import numpy as np

from ..ris import make_sampler
from ..ris.flat import append_batch
from ..ris.rrset import FlatBatch, RRSampler, sample_set_range
from ..ris.wire import encoded_batch_nbytes
from .cluster import MachineFailure, SimulatedCluster
from .faults import (
    CORRUPT,
    CRASH_HARD,
    DEFAULT_RETRY,
    DISCONNECT,
    DROP,
    FAILURE_KINDS,
    FaultPlan,
    FaultToleranceExceeded,
    PhaseTimeoutError,
    RetryPolicy,
)
from .machine import Machine
from .metrics import COMPUTATION, GENERATION, RunMetrics
from .parallel import GenerationOutcome, GenerationPool
from .spec import (
    ExecutorSpec,
    MultiprocessingSpec,
    SimulatedSpec,
    SocketSpec,
    as_spec,
)

__all__ = [
    "GeneratePhase",
    "MapPhase",
    "GatherPhase",
    "BroadcastPhase",
    "MasterPhase",
    "PhaseResult",
    "Executor",
    "SimulatedExecutor",
    "WorkerBackedExecutor",
    "MultiprocessingExecutor",
    "EXECUTORS",
    "make_executor",
    "fold_legacy_executor_kwargs",
    "as_executor",
    "executor_scope",
]


# ----------------------------------------------------------------------
# Phase plans
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GeneratePhase:
    """Generate RR sets on every machine and append them to its store.

    Parameters
    ----------
    label:
        Metrics label (category is always GENERATION).
    counts:
        Per-machine number of RR sets to draw; one entry per machine.
    targets:
        Per-machine stores the batches are appended to.  ``None``
        (default) appends to each machine's ``collection``.
    model, method:
        Sampler selection, as in :func:`repro.ris.make_sampler`.
    rng_scheme:
        ``"stream"`` (default) draws from each machine's sequential RNG
        stream; ``"per-set"`` draws RR set ``i`` from its own
        counter-based substream (:func:`repro.ris.rrset.per_set_rng`),
        which is what makes sets individually regenerable after a graph
        update.  Per-set phases require ``seed`` and ``starts``.
    seed:
        Base entropy for ``rng_scheme="per-set"``.
    starts:
        Per-machine index of the first set drawn by this phase
        (``rng_scheme="per-set"`` only): machine ``m`` draws sets
        ``starts[m] .. starts[m] + counts[m] - 1``.
    """

    label: str
    counts: Tuple[int, ...]
    targets: Tuple[Any, ...] | None = None
    model: str = "ic"
    method: str = "bfs"
    rng_scheme: str = "stream"
    seed: int | None = None
    starts: Tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "counts", tuple(int(c) for c in self.counts))
        if any(c < 0 for c in self.counts):
            raise ValueError("generation counts must be >= 0")
        if self.targets is not None:
            object.__setattr__(self, "targets", tuple(self.targets))
        if self.rng_scheme not in ("stream", "per-set"):
            raise ValueError(f"unknown rng_scheme {self.rng_scheme!r}")
        if self.rng_scheme == "per-set":
            if self.seed is None or self.starts is None:
                raise ValueError("per-set generation requires seed= and starts=")
            object.__setattr__(self, "starts", tuple(int(s) for s in self.starts))
            if len(self.starts) != len(self.counts):
                raise ValueError("starts and counts must have one entry per machine")
            if any(s < 0 for s in self.starts):
                raise ValueError("per-set start indices must be >= 0")


@dataclass(frozen=True)
class MapPhase:
    """Run ``work(machine)`` on every machine as a metered compute phase."""

    label: str
    work: Callable[[Machine], Any]
    category: str = COMPUTATION


@dataclass(frozen=True)
class GatherPhase:
    """Charge a slaves->master gather; one payload size per machine."""

    label: str
    byte_sizes: Tuple[int, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "byte_sizes", tuple(int(b) for b in self.byte_sizes))


@dataclass(frozen=True)
class BroadcastPhase:
    """Charge a master->slaves broadcast of ``num_bytes`` per slave."""

    label: str
    num_bytes: int


@dataclass(frozen=True)
class MasterPhase:
    """Run ``work()`` on the master as a metered computation phase."""

    label: str
    work: Callable[[], Any]


PhasePlan = GeneratePhase | MapPhase | GatherPhase | BroadcastPhase | MasterPhase


@dataclass(frozen=True)
class PhaseResult:
    """Outcome of one executed phase, mirroring its metrics record.

    ``results`` holds per-machine return values for generate/map phases
    (RR sets appended per machine for generation), the master work's
    return value for a master phase, and ``None`` for pure communication.
    """

    label: str
    category: str
    results: Any = None
    machine_times: Tuple[float, ...] = field(default_factory=tuple)
    parallel_time: float = 0.0
    num_bytes: int = 0


# ----------------------------------------------------------------------
# Executors
# ----------------------------------------------------------------------
class Executor(ABC):
    """Runs phase plans against a :class:`SimulatedCluster`'s state.

    The executor owns *how* phases execute; the cluster keeps owning the
    distributed state (machines, RNGs, collections) and the accounting
    (metrics, network model).  Communication and master phases are pure
    accounting and therefore shared by every implementation; generation
    is the backend-specific part.
    """

    name: str = "abstract"

    def __init__(
        self,
        cluster: SimulatedCluster,
        graph=None,
        faults: FaultPlan | None = None,
        retry: RetryPolicy | None = None,
    ) -> None:
        self.cluster = cluster
        self.graph = graph
        #: Injected-fault plan; ``None`` disables the fault machinery and
        #: takes the original (pre-fault-layer) generation path.
        self.faults = faults
        #: Recovery policy applied when ``faults`` is set.
        self.retry = retry if retry is not None else DEFAULT_RETRY
        self._samplers: Dict[Tuple[str, str], RRSampler] = {}

    # -- conveniences mirroring the cluster ----------------------------
    @property
    def machines(self):
        return self.cluster.machines

    @property
    def num_machines(self) -> int:
        return self.cluster.num_machines

    @property
    def metrics(self) -> RunMetrics:
        return self.cluster.metrics

    def sampler(self, model: str, method: str) -> RRSampler:
        """The executor-wide sampler for ``(model, method)``, built once."""
        if self.graph is None:
            raise ValueError(
                f"{type(self).__name__} needs a graph to run generation phases; "
                "pass graph= when constructing the executor"
            )
        key = (model, method)
        if key not in self._samplers:
            self._samplers[key] = make_sampler(self.graph, model=model, method=method)
        return self._samplers[key]

    def refresh_graph(self) -> None:
        """Drop per-graph caches after the graph mutated in place.

        Samplers precompute traversal tables (overlay arrays, prefix
        sums, ``p_max``) at construction, so every cached sampler is
        stale once a :class:`~repro.graphs.digraph.GraphDelta` lands or
        the graph is rebased.  The multiprocessing backend additionally
        re-broadcasts the shared-memory block to its workers.
        """
        self._samplers = {}

    # -- phase dispatch -------------------------------------------------
    def run_phase(self, plan: PhasePlan) -> PhaseResult:
        """Execute one phase plan and return its metered outcome."""
        if isinstance(plan, GeneratePhase):
            if len(plan.counts) != self.num_machines:
                raise ValueError(
                    f"expected {self.num_machines} generation counts, got {len(plan.counts)}"
                )
            if plan.targets is not None and len(plan.targets) != self.num_machines:
                raise ValueError(
                    f"expected {self.num_machines} generation targets, got {len(plan.targets)}"
                )
            if plan.rng_scheme == "per-set" and self.faults is not None:
                # The fault machinery's snapshot/replay discipline manages
                # sequential machine streams; per-set substreams are already
                # replayable by construction, so the combination is refused
                # rather than half-supported.
                raise ValueError(
                    "per-set generation does not compose with fault injection"
                )
            return self._run_generate(plan)
        if isinstance(plan, MapPhase):
            results = self.cluster.map(plan.category, plan.label, plan.work)
            return self._result_from_last_phase(plan.label, results)
        if isinstance(plan, GatherPhase):
            self.cluster.gather(plan.label, list(plan.byte_sizes))
            return self._result_from_last_phase(plan.label, None)
        if isinstance(plan, BroadcastPhase):
            self.cluster.broadcast(plan.label, plan.num_bytes)
            return self._result_from_last_phase(plan.label, None)
        if isinstance(plan, MasterPhase):
            result = self.cluster.run_on_master(plan.label, plan.work)
            return self._result_from_last_phase(plan.label, result)
        raise TypeError(f"unknown phase plan {type(plan).__name__}")

    def _result_from_last_phase(self, label: str, results: Any) -> PhaseResult:
        record = self.metrics.phases[-1]
        return PhaseResult(
            label=label,
            category=record.category,
            results=results,
            machine_times=record.machine_times,
            parallel_time=record.parallel_time,
            num_bytes=record.num_bytes,
        )

    def _generation_targets(self, plan: GeneratePhase) -> Tuple[Any, ...]:
        if plan.targets is not None:
            return plan.targets
        targets = tuple(machine.collection for machine in self.machines)
        if any(target is None for target in targets):
            raise ValueError(
                "generation phase has no targets and a machine has no collection; "
                "call cluster.init_collections() or pass targets="
            )
        return targets

    @abstractmethod
    def _run_generate(self, plan: GeneratePhase) -> PhaseResult:
        """Backend-specific generation of ``plan.counts`` RR sets."""

    # -- resource lifecycle ---------------------------------------------
    def close(self) -> None:
        """Release backend resources (worker pools, shared memory).

        A no-op for the simulated backend; the multiprocessing backend
        stops its persistent worker pool and unlinks the shared-memory
        graph block.  Idempotent, and safe to call on every exit path —
        the entry points call it in a ``finally`` so fault-recovery
        aborts and checkpoint/resume cycles reclaim everything.
        """

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- fault-path helpers shared by both backends ---------------------
    @staticmethod
    def _batch_nbytes(batch: FlatBatch) -> int:
        """Wire size of one generation batch (delta + varint encoded)."""
        return encoded_batch_nbytes(batch)

    def _raise_unrecovered(
        self, label: str, failed: Dict[int, str], attempts: int
    ) -> None:
        """Fail fast when retries are exhausted and reassignment is off.

        ``failed`` maps machine id -> kind of its last failure; a timeout
        anywhere means the phase deadline fired, which callers (and the
        worker-death test) distinguish from plain exhaustion.
        """
        ids = sorted(failed)
        if any(failed[i] == "timeout" for i in ids):
            raise PhaseTimeoutError(label, ids, self.retry.phase_timeout)
        raise FaultToleranceExceeded(label, ids, attempts)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(cluster={self.cluster!r})"


class SimulatedExecutor(Executor):
    """Sequential metered execution on the simulated cluster.

    Generation draws each machine's batch with the machine's own RNG via
    :meth:`RRSampler.sample_batch <repro.ris.rrset.RRSampler.sample_batch>`
    inside a metered :meth:`SimulatedCluster.map`, so timing semantics
    (per-machine wall clock x slowdown, parallel time = max) are exactly
    the cluster's.
    """

    name = "simulated"

    def _run_generate(self, plan: GeneratePhase) -> PhaseResult:
        if self.faults is not None:
            return self._run_generate_with_faults(plan)
        sampler = self.sampler(plan.model, plan.method)
        targets = self._generation_targets(plan)
        counts = plan.counts
        if plan.rng_scheme == "per-set":
            seed, starts = plan.seed, plan.starts

            def work(machine: Machine) -> int:
                mid = machine.machine_id
                batch = sample_set_range(sampler, seed, mid, starts[mid], counts[mid])
                append_batch(targets[mid], batch)
                return batch.count

        else:

            def work(machine: Machine) -> int:
                batch = sampler.sample_batch(machine.rng, counts[machine.machine_id])
                append_batch(targets[machine.machine_id], batch)
                return batch.count

        results = self.cluster.map(GENERATION, plan.label, work)
        return self._result_from_last_phase(plan.label, results)

    def _run_generate_with_faults(self, plan: GeneratePhase) -> PhaseResult:
        """Generation with injected faults, retries and reassignment.

        All failure handling runs in *simulated* time: a crashed attempt's
        wasted work, a timeout wait or a straggler's excess are charged to
        the machine's metered time and logged as recovery events — nothing
        sleeps.  The RNG discipline (snapshot before each attempt, restore
        on failure, replay on reassignment) keeps the appended batches
        bit-identical to a fault-free run.
        """
        sampler = self.sampler(plan.model, plan.method)
        targets = self._generation_targets(plan)
        counts = plan.counts
        faults, policy = self.faults, self.retry
        round_index = self.metrics.current_round
        label = plan.label
        network = self.cluster.network

        times: List[float] = [0.0] * self.num_machines
        results: List[int] = [0] * self.num_machines
        snapshots: Dict[int, Any] = {}
        failed: Dict[int, str] = {}

        for machine in self.machines:
            mid = machine.machine_id
            count = counts[mid]
            snapshot = machine.rng_state()
            snapshots[mid] = snapshot
            last_kind = "crash"
            succeeded = False
            for attempt in range(1, policy.max_attempts + 1):
                machine.set_rng_state(snapshot)
                times[mid] += policy.delay_before(attempt)
                fault = faults.failure_for(mid, round_index, attempt)
                factor = faults.straggler_factor(mid, round_index, attempt)

                def work(m: Machine) -> FlatBatch:
                    return sampler.sample_batch(m.rng, count)

                batch, elapsed = machine.run(work)
                metered = elapsed * factor
                if factor > 1.0:
                    self.metrics.record_recovery(
                        "straggler-wait",
                        mid,
                        label,
                        attempt,
                        time_lost=metered - elapsed,
                        detail=f"injected slowdown x{factor:g}",
                    )
                timed_out = (
                    policy.phase_timeout is not None and metered > policy.phase_timeout
                )
                if fault is not None and fault.kind in FAILURE_KINDS:
                    # A plain crash reports itself and a dropped connection
                    # resets the stream, so both are noticed at once; a hard
                    # kill or dropped payload is silent and only the
                    # deadline notices.
                    silent = fault.kind in (CRASH_HARD, DROP)
                    if silent and policy.phase_timeout is not None:
                        last_kind, lost = "timeout", policy.phase_timeout
                    elif fault.kind == DISCONNECT:
                        last_kind, lost = "disconnect", metered
                    else:
                        last_kind, lost = "crash", metered
                    self.metrics.record_recovery(
                        last_kind, mid, label, attempt, time_lost=lost,
                        detail=f"injected {fault.kind}",
                    )
                    times[mid] += lost
                    continue
                if timed_out:
                    last_kind = "timeout"
                    self.metrics.record_recovery(
                        "timeout", mid, label, attempt,
                        time_lost=policy.phase_timeout,
                        detail=f"attempt ran {metered:g}s against a "
                        f"{policy.phase_timeout:g}s deadline",
                    )
                    times[mid] += policy.phase_timeout
                    continue
                if fault is not None and fault.kind == CORRUPT:
                    # The batch itself is intact on the worker; only the
                    # transfer failed its CRC, so charge a retransmission
                    # and keep the (already advanced) RNG stream.
                    retrans = network.retransmission_time(self._batch_nbytes(batch))
                    self.metrics.record_recovery(
                        "corruption", mid, label, attempt, time_lost=retrans,
                        detail="payload failed CRC32; retransmitted",
                    )
                    metered += retrans
                append_batch(targets[mid], batch)
                results[mid] = batch.count
                times[mid] += metered
                succeeded = True
                break
            if not succeeded:
                machine.set_rng_state(snapshot)
                failed[mid] = last_kind

        if failed:
            if not policy.reassign:
                self._raise_unrecovered(label, failed, policy.max_attempts)
            survivors = [m for m in self.machines if m.machine_id not in failed]
            if not survivors:
                self._raise_unrecovered(label, failed, policy.max_attempts)
            for index, mid in enumerate(sorted(failed)):
                survivor = survivors[index % len(survivors)]
                replay = np.random.default_rng()
                replay.bit_generator.state = snapshots[mid]
                count = counts[mid]

                def handover(m: Machine, _rng=replay, _count=count) -> FlatBatch:
                    return sampler.sample_batch(_rng, _count)

                batch, elapsed = survivor.run(handover)
                append_batch(targets[mid], batch)
                results[mid] = batch.count
                # The logical machine's stream continues from the replayed
                # draws, exactly where a healthy run would have left it.
                self.machines[mid].set_rng_state(replay.bit_generator.state)
                times[survivor.machine_id] += elapsed
                self.metrics.record_recovery(
                    "reassignment",
                    mid,
                    label,
                    policy.max_attempts,
                    time_lost=elapsed,
                    detail=(
                        f"quota of {count} RR sets replayed on machine "
                        f"{survivor.machine_id} after {failed[mid]}"
                    ),
                )

        self.metrics.record_compute_phase(GENERATION, label, times)
        return self._result_from_last_phase(label, results)


class WorkerBackedExecutor(Executor):
    """Shared master-side logic for executors that fan out to real workers.

    Subclasses provide :meth:`_dispatch` — ship per-machine generation
    tasks to *some* worker transport (an OS-process pool, TCP sockets)
    and return one :class:`~repro.cluster.parallel.GenerationOutcome`
    per machine — and inherit everything delicate: RNG restore, batch
    append, slowdown metering, and the fault path's attempt loop with
    retries, backoff, per-kind recovery events and reassignment of last
    resort.  Keeping that logic in one place is what keeps the backends
    bit-identical to each other under every fault scenario.

    Each machine's private RNG is shipped to its worker, the worker
    draws the machine's batch with it, and the advanced RNG state is
    restored on the master — so collections *and* subsequent random
    decisions are bit-identical to :class:`SimulatedExecutor` for the
    same seed.  A machine's own RNG is only advanced once its payload
    verifies, so every retry ships the identical pre-attempt state and
    redraws the identical batch — content never depends on which faults
    fired.
    """

    def _dispatch(
        self,
        model: str,
        method: str,
        counts: List[int],
        rngs: List[Any],
        directives: List[str | None] | None = None,
        timeout: float | None = None,
    ) -> List[GenerationOutcome]:
        """Run one generation wave on the backend's workers.

        ``counts[i]`` / ``rngs[i]`` / ``directives[i]`` describe task
        ``i``; outcomes come back in the same order.  Failures are
        captured per task (``outcome.error``), never raised."""
        raise NotImplementedError

    # -- backend knobs the fault path consults --------------------------
    def _directive_for(self, kind: str) -> str:
        """Worker directive injecting fault ``kind``.

        Process-pool workers have no connection to sever and no payload
        channel of their own to drop, so both are collapsed onto a hard
        kill: silent from the master's side, detected only by the phase
        deadline.  Transports with richer failure modes override this.
        """
        if kind in (DROP, DISCONNECT):
            return CRASH_HARD
        return kind

    def _error_kind(self, error: str) -> str:
        """Recovery-event kind for a worker error string."""
        for kind in ("timeout", "corruption", "disconnect"):
            if error.startswith(kind):
                return kind
        return "crash"

    # -- measured-transport hooks ---------------------------------------
    def _wire_mark(self) -> Any:
        """Snapshot of the transport counters before a phase (or None)."""
        return None

    def _wire_extras(self, mark: Any) -> Dict[str, int]:
        """Per-phase transport kwargs for ``record_compute_phase``."""
        return {}

    def _run_generate(self, plan: GeneratePhase) -> PhaseResult:
        if self.faults is not None:
            return self._run_generate_with_faults(plan)
        targets = self._generation_targets(plan)
        if plan.rng_scheme == "per-set":
            # The worker resolves this token into per_set_rng substreams;
            # the machines' sequential streams are never consumed, so no
            # rng_state comes back.
            rngs = [
                ("per-set", plan.seed, machine.machine_id, plan.starts[machine.machine_id])
                for machine in self.machines
            ]
        else:
            rngs = [machine.rng for machine in self.machines]
        mark = self._wire_mark()
        outcomes = self._dispatch(
            plan.model,
            plan.method,
            list(plan.counts),
            rngs,
        )
        times = []
        results = []
        ipc_bytes = 0
        for machine, target, outcome in zip(self.machines, targets, outcomes):
            if outcome.error is not None:
                raise MachineFailure(machine.machine_id, plan.label) from RuntimeError(
                    outcome.error
                )
            if outcome.rng_state is not None:
                machine.set_rng_state(outcome.rng_state)
            append_batch(target, outcome.batch)
            times.append(outcome.elapsed * machine.slowdown)
            results.append(outcome.batch.count)
            ipc_bytes += outcome.nbytes
        self.metrics.record_compute_phase(
            GENERATION, plan.label, times, num_bytes=ipc_bytes, **self._wire_extras(mark)
        )
        return self._result_from_last_phase(plan.label, results)

    def _run_generate_with_faults(self, plan: GeneratePhase) -> PhaseResult:
        """Generation over real workers with real failure detection.

        Injected faults become per-worker *directives* (raise, SIGKILL,
        flip a payload byte, sever the connection); the phase timeout and
        backoff are genuine wall-clock, so a hard-killed worker really is
        declared lost by the deadline — and a severed connection really
        is detected by the broken stream.
        """
        targets = self._generation_targets(plan)
        counts = plan.counts
        faults, policy = self.faults, self.retry
        round_index = self.metrics.current_round
        label = plan.label

        times: List[float] = [0.0] * self.num_machines
        results: List[int] = [0] * self.num_machines
        pending = set(range(self.num_machines))
        last_kind: Dict[int, str] = {}
        ipc_bytes = 0
        mark = self._wire_mark()

        for attempt in range(1, policy.max_attempts + 1):
            if not pending:
                break
            delay = policy.delay_before(attempt)
            if delay:
                time.sleep(delay)
            ids = sorted(pending)
            directives: List[str | None] = [
                None
                if (fault := faults.failure_for(mid, round_index, attempt)) is None
                else self._directive_for(fault.kind)
                for mid in ids
            ]
            outcomes = self._dispatch(
                plan.model,
                plan.method,
                [counts[mid] for mid in ids],
                [self.machines[mid].rng for mid in ids],
                directives=directives,
                timeout=policy.phase_timeout,
            )
            for mid, (batch, rng_state, elapsed, error, nbytes) in zip(ids, outcomes):
                machine = self.machines[mid]
                ipc_bytes += nbytes
                if error is None:
                    factor = faults.straggler_factor(mid, round_index, attempt)
                    metered = elapsed * machine.slowdown * factor
                    if factor > 1.0:
                        self.metrics.record_recovery(
                            "straggler-wait",
                            mid,
                            label,
                            attempt,
                            time_lost=metered - elapsed * machine.slowdown,
                            detail=f"injected slowdown x{factor:g}",
                        )
                    machine.set_rng_state(rng_state)
                    append_batch(targets[mid], batch)
                    results[mid] = batch.count
                    times[mid] += metered
                    pending.discard(mid)
                    continue
                kind = self._error_kind(error)
                last_kind[mid] = kind
                lost = elapsed * machine.slowdown + delay
                self.metrics.record_recovery(
                    kind, mid, label, attempt, time_lost=lost, detail=error
                )
                times[mid] += lost

        if pending:
            failed = {mid: last_kind.get(mid, "crash") for mid in sorted(pending)}
            if not policy.reassign:
                self._raise_unrecovered(label, failed, policy.max_attempts)
            # Reassignment of last resort: the master replays each lost
            # quota inline with the machine's own (never-advanced) RNG, so
            # the batches equal what the workers would have produced.
            sampler = self.sampler(plan.model, plan.method)
            for mid in sorted(pending):
                machine = self.machines[mid]
                start = time.perf_counter()
                batch = sampler.sample_batch(machine.rng, counts[mid])
                elapsed = time.perf_counter() - start
                append_batch(targets[mid], batch)
                results[mid] = batch.count
                times[mid] += elapsed
                self.metrics.record_recovery(
                    "reassignment",
                    mid,
                    label,
                    policy.max_attempts,
                    time_lost=elapsed,
                    detail=(
                        f"quota of {counts[mid]} RR sets replayed on the master "
                        f"after {failed[mid]}"
                    ),
                )

        self.metrics.record_compute_phase(
            GENERATION, label, times, num_bytes=ipc_bytes, **self._wire_extras(mark)
        )
        return self._result_from_last_phase(label, results)


class MultiprocessingExecutor(WorkerBackedExecutor):
    """Real OS-process fan-out for the generation phase.

    The executor owns a persistent :class:`~repro.cluster.parallel.GenerationPool`
    — workers and the shared-memory graph broadcast live for the whole
    run instead of being rebuilt every phase.  Call :meth:`close` (the
    entry points do, via a ``with``-block) to stop the workers and unlink
    the shared block.  Generation phases record the framed, compressed
    payload bytes the workers actually shipped; worker wall-clock time is
    scaled by the machine's ``slowdown``, keeping heterogeneous-cluster
    metering consistent.

    Non-generation phases run through the shared accounting path: seed
    selection is master-side and cheap compared to generation (the
    paper parallelises generation only).
    """

    name = "multiprocessing"

    def __init__(
        self,
        cluster: SimulatedCluster,
        graph=None,
        processes: int | None = None,
        faults: FaultPlan | None = None,
        retry: RetryPolicy | None = None,
        start_method: str | None = None,
        zero_copy: bool | None = None,
    ) -> None:
        if graph is None:
            raise ValueError("MultiprocessingExecutor requires the graph up front")
        super().__init__(cluster, graph, faults=faults, retry=retry)
        self.processes = processes
        self.start_method = start_method
        self.zero_copy = zero_copy
        self._pool: GenerationPool | None = None

    @property
    def pool(self) -> GenerationPool:
        """The executor-owned persistent worker pool, built on first use."""
        if self._pool is None:
            self._pool = GenerationPool(
                self.graph,
                processes=self.processes,
                start_method=self.start_method,
                zero_copy=self.zero_copy,
            )
        return self._pool

    def close(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.close()

    def refresh_graph(self) -> None:
        super().refresh_graph()
        if self._pool is not None:
            self._pool.refresh_graph()

    def _dispatch(
        self,
        model: str,
        method: str,
        counts: List[int],
        rngs: List[Any],
        directives: List[str | None] | None = None,
        timeout: float | None = None,
    ) -> List[GenerationOutcome]:
        return self.pool.run(
            model, method, counts, rngs, directives=directives, timeout=timeout
        )


# ----------------------------------------------------------------------
# Factories
# ----------------------------------------------------------------------
EXECUTORS: Tuple[str, ...] = ("simulated", "multiprocessing", "socket")


def fold_legacy_executor_kwargs(
    spec: ExecutorSpec,
    *,
    processes: int | None = None,
    start_method: str | None = None,
    zero_copy: bool | None = None,
    owner: str = "make_executor",
) -> ExecutorSpec:
    """Fold deprecated per-backend kwargs into an :class:`ExecutorSpec`.

    Emits one :class:`DeprecationWarning` per kwarg actually passed, then
    returns a spec with the value applied (explicit spec options win over
    legacy kwargs).  Legacy kwargs on a backend that has no such option
    (``processes`` with the simulated or socket executor) raise
    ``ValueError`` exactly as the old keyword plumbing did implicitly by
    ignoring them — silently dropping a requested worker count would be
    worse than failing.
    """
    legacy = {
        "processes": processes,
        "start_method": start_method,
        "zero_copy": zero_copy,
    }
    changes = {}
    for name, value in legacy.items():
        if value is None:
            continue
        warnings.warn(
            f"{owner}: the {name}= keyword is deprecated; pass an ExecutorSpec "
            f'(e.g. MultiprocessingSpec({name}={value!r})) or a string shorthand '
            "instead",
            DeprecationWarning,
            stacklevel=3,
        )
        if not any(f.name == name for f in dataclasses.fields(spec)):
            raise ValueError(
                f"{name}= does not apply to the {spec.kind!r} executor"
            )
        if getattr(spec, name) is None:
            changes[name] = value
    if changes:
        spec = spec.with_overrides(**changes)
    return spec.validate()


def make_executor(
    spec: ExecutorSpec | str | None,
    cluster: SimulatedCluster,
    graph=None,
    processes: int | None = None,
    faults: FaultPlan | None = None,
    retry: RetryPolicy | None = None,
    start_method: str | None = None,
    zero_copy: bool | None = None,
) -> Executor:
    """Build the executor an :class:`~repro.cluster.spec.ExecutorSpec` describes.

    ``spec`` is a spec instance, a string shorthand (``"simulated"``,
    ``"multiprocessing:8"``, ``"socket:127.0.0.1:9100,9101"`` — see
    :mod:`repro.cluster.spec`) or ``None`` for the default simulated
    backend.  ``faults`` (a :class:`~repro.cluster.faults.FaultPlan`)
    enables the fault-tolerant generation path on any backend; ``retry``
    overrides the default recovery policy.

    ``processes``, ``start_method`` and ``zero_copy`` are deprecated:
    they predate specs and now warn before being folded into the spec's
    matching option (the spec wins when both are given).
    """
    resolved = fold_legacy_executor_kwargs(
        as_spec(spec),
        processes=processes,
        start_method=start_method,
        zero_copy=zero_copy,
    )
    if isinstance(resolved, SimulatedSpec):
        return SimulatedExecutor(cluster, graph=graph, faults=faults, retry=retry)
    if isinstance(resolved, MultiprocessingSpec):
        return MultiprocessingExecutor(
            cluster,
            graph=graph,
            processes=resolved.processes,
            faults=faults,
            retry=retry,
            start_method=resolved.start_method,
            zero_copy=resolved.zero_copy,
        )
    if isinstance(resolved, SocketSpec):
        # Imported lazily: the socket backend pulls in server plumbing
        # that pure simulated/multiprocessing runs never need.
        from .socket_executor import SocketExecutor

        return SocketExecutor(
            cluster, graph=graph, spec=resolved, faults=faults, retry=retry
        )
    raise ValueError(
        f"no executor registered for spec kind {resolved.kind!r}; "
        f"expected one of {EXECUTORS}"
    )


@contextmanager
def executor_scope(exec_: Executor, *, owned: bool) -> Iterator[RunMetrics]:
    """Scope one entry-point run on an owned or lent executor.

    An *owned* executor (the entry point built it) is entered as a
    context manager, so its worker pool and shared-memory graph are
    reclaimed on every exit path — fault-recovery aborts and checkpoint
    crashes included.  A *lent* executor is metered in isolation
    instead: a fresh :class:`~repro.cluster.metrics.RunMetrics` replaces
    the cluster's for the duration and is folded back into the caller's
    accumulated metrics on exit.  Yields the metrics the scoped run
    records into.
    """
    cluster = exec_.cluster
    if owned:
        with exec_:
            yield cluster.metrics
    else:
        previous, metrics = cluster.metrics, RunMetrics()
        cluster.metrics = metrics
        try:
            yield metrics
        finally:
            cluster.metrics = previous
            previous.merge(metrics)


def as_executor(obj) -> Executor:
    """Coerce a cluster (or executor) to an executor.

    Lets phase-plan algorithms such as NEWGREEDI accept either: an
    :class:`Executor` passes through; a bare :class:`SimulatedCluster`
    is wrapped in a :class:`SimulatedExecutor` (no graph — generation
    phases would need one, coordination phases do not).
    """
    if isinstance(obj, Executor):
        return obj
    if isinstance(obj, SimulatedCluster):
        return SimulatedExecutor(obj)
    raise TypeError(f"cannot build an executor from {type(obj).__name__}")
