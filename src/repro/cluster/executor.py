"""The Executor layer: one phase-plan interface over both backends.

Algorithms (DIIMM, D-SSA, D-SUBSIM, D-OPIM-C) describe each distributed
step as a declarative *phase plan* — generate RR sets, map a work
function, gather, broadcast, or run master-side code — and hand it to an
:class:`Executor`.  The executor decides *how* the phase runs while
keeping the accounting contract identical:

* :class:`SimulatedExecutor` executes machines sequentially on the
  simulated cluster, exactly as the algorithms previously did by calling
  :meth:`SimulatedCluster.map <repro.cluster.cluster.SimulatedCluster.map>`
  directly;
* :class:`MultiprocessingExecutor` fans the generation phase out over
  real OS processes (the closest local equivalent of the paper's MPI
  workers), shipping each machine's private RNG to its worker and
  restoring the advanced RNG state afterwards — so a run is
  reproducible and *identical* to the simulated backend for a fixed
  seed, which the conformance tests pin.

Every phase lands in the cluster's :class:`~repro.cluster.metrics.RunMetrics`
with per-machine times (scaled by each machine's ``slowdown``) and byte
counts, whichever executor ran it.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Tuple

from ..ris import make_sampler
from ..ris.flat import append_batch
from ..ris.rrset import RRSampler
from .cluster import MachineFailure, SimulatedCluster
from .machine import Machine
from .metrics import COMPUTATION, GENERATION, RunMetrics
from .parallel import run_generation_pool

__all__ = [
    "GeneratePhase",
    "MapPhase",
    "GatherPhase",
    "BroadcastPhase",
    "MasterPhase",
    "PhaseResult",
    "Executor",
    "SimulatedExecutor",
    "MultiprocessingExecutor",
    "EXECUTORS",
    "make_executor",
    "as_executor",
]


# ----------------------------------------------------------------------
# Phase plans
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GeneratePhase:
    """Generate RR sets on every machine and append them to its store.

    Parameters
    ----------
    label:
        Metrics label (category is always GENERATION).
    counts:
        Per-machine number of RR sets to draw; one entry per machine.
    targets:
        Per-machine stores the batches are appended to.  ``None``
        (default) appends to each machine's ``collection``.
    model, method:
        Sampler selection, as in :func:`repro.ris.make_sampler`.
    """

    label: str
    counts: Tuple[int, ...]
    targets: Tuple[Any, ...] | None = None
    model: str = "ic"
    method: str = "bfs"

    def __post_init__(self) -> None:
        object.__setattr__(self, "counts", tuple(int(c) for c in self.counts))
        if any(c < 0 for c in self.counts):
            raise ValueError("generation counts must be >= 0")
        if self.targets is not None:
            object.__setattr__(self, "targets", tuple(self.targets))


@dataclass(frozen=True)
class MapPhase:
    """Run ``work(machine)`` on every machine as a metered compute phase."""

    label: str
    work: Callable[[Machine], Any]
    category: str = COMPUTATION


@dataclass(frozen=True)
class GatherPhase:
    """Charge a slaves->master gather; one payload size per machine."""

    label: str
    byte_sizes: Tuple[int, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "byte_sizes", tuple(int(b) for b in self.byte_sizes))


@dataclass(frozen=True)
class BroadcastPhase:
    """Charge a master->slaves broadcast of ``num_bytes`` per slave."""

    label: str
    num_bytes: int


@dataclass(frozen=True)
class MasterPhase:
    """Run ``work()`` on the master as a metered computation phase."""

    label: str
    work: Callable[[], Any]


PhasePlan = GeneratePhase | MapPhase | GatherPhase | BroadcastPhase | MasterPhase


@dataclass(frozen=True)
class PhaseResult:
    """Outcome of one executed phase, mirroring its metrics record.

    ``results`` holds per-machine return values for generate/map phases
    (RR sets appended per machine for generation), the master work's
    return value for a master phase, and ``None`` for pure communication.
    """

    label: str
    category: str
    results: Any = None
    machine_times: Tuple[float, ...] = field(default_factory=tuple)
    parallel_time: float = 0.0
    num_bytes: int = 0


# ----------------------------------------------------------------------
# Executors
# ----------------------------------------------------------------------
class Executor(ABC):
    """Runs phase plans against a :class:`SimulatedCluster`'s state.

    The executor owns *how* phases execute; the cluster keeps owning the
    distributed state (machines, RNGs, collections) and the accounting
    (metrics, network model).  Communication and master phases are pure
    accounting and therefore shared by every implementation; generation
    is the backend-specific part.
    """

    name: str = "abstract"

    def __init__(self, cluster: SimulatedCluster, graph=None) -> None:
        self.cluster = cluster
        self.graph = graph
        self._samplers: Dict[Tuple[str, str], RRSampler] = {}

    # -- conveniences mirroring the cluster ----------------------------
    @property
    def machines(self):
        return self.cluster.machines

    @property
    def num_machines(self) -> int:
        return self.cluster.num_machines

    @property
    def metrics(self) -> RunMetrics:
        return self.cluster.metrics

    def sampler(self, model: str, method: str) -> RRSampler:
        """The executor-wide sampler for ``(model, method)``, built once."""
        if self.graph is None:
            raise ValueError(
                f"{type(self).__name__} needs a graph to run generation phases; "
                "pass graph= when constructing the executor"
            )
        key = (model, method)
        if key not in self._samplers:
            self._samplers[key] = make_sampler(self.graph, model=model, method=method)
        return self._samplers[key]

    # -- phase dispatch -------------------------------------------------
    def run_phase(self, plan: PhasePlan) -> PhaseResult:
        """Execute one phase plan and return its metered outcome."""
        if isinstance(plan, GeneratePhase):
            if len(plan.counts) != self.num_machines:
                raise ValueError(
                    f"expected {self.num_machines} generation counts, got {len(plan.counts)}"
                )
            if plan.targets is not None and len(plan.targets) != self.num_machines:
                raise ValueError(
                    f"expected {self.num_machines} generation targets, got {len(plan.targets)}"
                )
            return self._run_generate(plan)
        if isinstance(plan, MapPhase):
            results = self.cluster.map(plan.category, plan.label, plan.work)
            return self._result_from_last_phase(plan.label, results)
        if isinstance(plan, GatherPhase):
            self.cluster.gather(plan.label, list(plan.byte_sizes))
            return self._result_from_last_phase(plan.label, None)
        if isinstance(plan, BroadcastPhase):
            self.cluster.broadcast(plan.label, plan.num_bytes)
            return self._result_from_last_phase(plan.label, None)
        if isinstance(plan, MasterPhase):
            result = self.cluster.run_on_master(plan.label, plan.work)
            return self._result_from_last_phase(plan.label, result)
        raise TypeError(f"unknown phase plan {type(plan).__name__}")

    def _result_from_last_phase(self, label: str, results: Any) -> PhaseResult:
        record = self.metrics.phases[-1]
        return PhaseResult(
            label=label,
            category=record.category,
            results=results,
            machine_times=record.machine_times,
            parallel_time=record.parallel_time,
            num_bytes=record.num_bytes,
        )

    def _generation_targets(self, plan: GeneratePhase) -> Tuple[Any, ...]:
        if plan.targets is not None:
            return plan.targets
        targets = tuple(machine.collection for machine in self.machines)
        if any(target is None for target in targets):
            raise ValueError(
                "generation phase has no targets and a machine has no collection; "
                "call cluster.init_collections() or pass targets="
            )
        return targets

    @abstractmethod
    def _run_generate(self, plan: GeneratePhase) -> PhaseResult:
        """Backend-specific generation of ``plan.counts`` RR sets."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(cluster={self.cluster!r})"


class SimulatedExecutor(Executor):
    """Sequential metered execution on the simulated cluster.

    Generation draws each machine's batch with the machine's own RNG via
    :meth:`RRSampler.sample_batch <repro.ris.rrset.RRSampler.sample_batch>`
    inside a metered :meth:`SimulatedCluster.map`, so timing semantics
    (per-machine wall clock x slowdown, parallel time = max) are exactly
    the cluster's.
    """

    name = "simulated"

    def _run_generate(self, plan: GeneratePhase) -> PhaseResult:
        sampler = self.sampler(plan.model, plan.method)
        targets = self._generation_targets(plan)
        counts = plan.counts

        def work(machine: Machine) -> int:
            batch = sampler.sample_batch(machine.rng, counts[machine.machine_id])
            append_batch(targets[machine.machine_id], batch)
            return batch.count

        results = self.cluster.map(GENERATION, plan.label, work)
        return self._result_from_last_phase(plan.label, results)


class MultiprocessingExecutor(Executor):
    """Real OS-process fan-out for the generation phase.

    Each machine's private RNG is pickled to its worker process, the
    worker draws the machine's batch with it, and the advanced RNG state
    is restored on the master — so collections *and* subsequent random
    decisions are bit-identical to :class:`SimulatedExecutor` for the
    same seed.  Worker wall-clock time is scaled by the machine's
    ``slowdown``, keeping heterogeneous-cluster metering consistent.

    Non-generation phases run through the shared accounting path: seed
    selection is master-side and cheap compared to generation (the
    paper parallelises generation only).
    """

    name = "multiprocessing"

    def __init__(self, cluster: SimulatedCluster, graph=None, processes: int | None = None) -> None:
        if graph is None:
            raise ValueError("MultiprocessingExecutor requires the graph up front")
        super().__init__(cluster, graph)
        self.processes = processes

    def _run_generate(self, plan: GeneratePhase) -> PhaseResult:
        targets = self._generation_targets(plan)
        outcomes = run_generation_pool(
            self.graph,
            plan.model,
            plan.method,
            list(plan.counts),
            [machine.rng for machine in self.machines],
            processes=self.processes,
        )
        times = []
        results = []
        for machine, target, (batch, rng_state, elapsed, error) in zip(
            self.machines, targets, outcomes
        ):
            if error is not None:
                raise MachineFailure(machine.machine_id, plan.label) from RuntimeError(error)
            machine.set_rng_state(rng_state)
            append_batch(target, batch)
            times.append(elapsed * machine.slowdown)
            results.append(batch.count)
        self.metrics.record_compute_phase(GENERATION, plan.label, times)
        return self._result_from_last_phase(plan.label, results)


# ----------------------------------------------------------------------
# Factories
# ----------------------------------------------------------------------
EXECUTORS: Tuple[str, ...] = ("simulated", "multiprocessing")


def make_executor(
    name: str,
    cluster: SimulatedCluster,
    graph=None,
    processes: int | None = None,
) -> Executor:
    """Build the named executor over ``cluster``.

    ``processes`` is only meaningful for the multiprocessing backend
    (worker-pool size; defaults to one process per machine capped at the
    CPU count).
    """
    if name == "simulated":
        return SimulatedExecutor(cluster, graph=graph)
    if name == "multiprocessing":
        return MultiprocessingExecutor(cluster, graph=graph, processes=processes)
    raise ValueError(f"unknown executor {name!r}; expected one of {EXECUTORS}")


def as_executor(obj) -> Executor:
    """Coerce a cluster (or executor) to an executor.

    Lets phase-plan algorithms such as NEWGREEDI accept either: an
    :class:`Executor` passes through; a bare :class:`SimulatedCluster`
    is wrapped in a :class:`SimulatedExecutor` (no graph — generation
    phases would need one, coordination phases do not).
    """
    if isinstance(obj, Executor):
        return obj
    if isinstance(obj, SimulatedCluster):
        return SimulatedExecutor(obj)
    raise TypeError(f"cannot build an executor from {type(obj).__name__}")
