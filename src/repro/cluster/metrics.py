"""Timing and traffic accounting for simulated distributed runs.

Figures 5-9 of the paper report, per run, the total running time and its
breakdown into RR-set *generation* time, seed-selection *computation* time
and *communication* time.  :class:`RunMetrics` accumulates exactly those
three categories.

Honesty contract (DESIGN.md): machine work is measured with real
wall-clock timers while the simulator executes machines one after another;
the *parallel* time of a phase is the maximum per-machine time, and
communication time is derived from counted payload bytes through the
:class:`~repro.cluster.network.NetworkModel`.  Nothing is extrapolated
from asymptotic formulas.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List

__all__ = ["PhaseRecord", "RunMetrics", "GENERATION", "COMPUTATION", "COMMUNICATION"]

GENERATION = "generation"
COMPUTATION = "computation"
COMMUNICATION = "communication"
_CATEGORIES = (GENERATION, COMPUTATION, COMMUNICATION)


@dataclass(frozen=True)
class PhaseRecord:
    """One metered phase: a map over machines or a communication round.

    ``round_index`` and ``rule`` are the adaptive-sampling annotations the
    :class:`~repro.core.driver.RoundDriver` stamps on every phase executed
    inside one of its rounds (``None`` for phases recorded outside a
    driver loop), letting tracing attribute time to doubling rounds.
    """

    category: str
    label: str
    parallel_time: float
    machine_times: tuple[float, ...] = ()
    num_bytes: int = 0
    round_index: int | None = None
    rule: str | None = None

    @property
    def total_machine_time(self) -> float:
        """Summed (sequential) machine time — the work a single machine
        would have done."""
        return sum(self.machine_times)


@dataclass
class RunMetrics:
    """Accumulated metrics of one distributed run."""

    phases: List[PhaseRecord] = field(default_factory=list)
    _round_index: int | None = field(default=None, init=False, repr=False, compare=False)
    _rule: str | None = field(default=None, init=False, repr=False, compare=False)

    @contextmanager
    def annotated(self, round_index: int | None = None, rule: str | None = None) -> Iterator[None]:
        """Stamp every phase recorded inside the block with round/rule.

        The round driver wraps each adaptive-sampling round in this
        context, so generation, selection and communication phases carry
        the round they belong to without the inner algorithms (NEWGREEDI,
        the executors) knowing anything about rounds.  Nesting restores
        the outer annotation on exit.
        """
        previous = (self._round_index, self._rule)
        self._round_index, self._rule = round_index, rule
        try:
            yield
        finally:
            self._round_index, self._rule = previous

    def record_compute_phase(
        self,
        category: str,
        label: str,
        machine_times: list[float],
    ) -> None:
        """Record a phase executed by all machines in parallel."""
        if category not in (GENERATION, COMPUTATION):
            raise ValueError(f"compute phases must be generation/computation, got {category}")
        self.phases.append(
            PhaseRecord(
                category=category,
                label=label,
                parallel_time=max(machine_times) if machine_times else 0.0,
                machine_times=tuple(machine_times),
                round_index=self._round_index,
                rule=self._rule,
            )
        )

    def record_communication(self, label: str, num_bytes: int, elapsed: float) -> None:
        """Record one communication round (bytes already costed by caller)."""
        self.phases.append(
            PhaseRecord(
                category=COMMUNICATION,
                label=label,
                parallel_time=elapsed,
                num_bytes=num_bytes,
                round_index=self._round_index,
                rule=self._rule,
            )
        )

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def time_in(self, category: str) -> float:
        """Total simulated parallel time spent in one category."""
        return sum(p.parallel_time for p in self.phases_in(category))

    def phases_in(self, category: str) -> List[PhaseRecord]:
        """The recorded phases of one category, in execution order."""
        if category not in _CATEGORIES:
            raise ValueError(f"unknown category {category!r}")
        return [p for p in self.phases if p.category == category]

    def phases_in_round(self, round_index: int) -> List[PhaseRecord]:
        """The phases annotated with one driver round, in execution order."""
        return [p for p in self.phases if p.round_index == round_index]

    def rounds(self) -> List[int]:
        """The distinct driver round indices seen, in execution order."""
        seen: List[int] = []
        for phase in self.phases:
            if phase.round_index is not None and phase.round_index not in seen:
                seen.append(phase.round_index)
        return seen

    @property
    def generation_time(self) -> float:
        return self.time_in(GENERATION)

    @property
    def computation_time(self) -> float:
        return self.time_in(COMPUTATION)

    @property
    def communication_time(self) -> float:
        return self.time_in(COMMUNICATION)

    @property
    def total_time(self) -> float:
        """Simulated end-to-end parallel running time."""
        return sum(p.parallel_time for p in self.phases)

    @property
    def total_bytes(self) -> int:
        """Total bytes moved between machines."""
        return sum(p.num_bytes for p in self.phases)

    @property
    def sequential_time(self) -> float:
        """Time a single machine doing all the work would have taken.

        Communication is excluded: a single machine does not communicate.
        """
        return sum(
            p.total_machine_time for p in self.phases if p.category != COMMUNICATION
        )

    def breakdown(self) -> Dict[str, float]:
        """The Fig 5-9 breakdown: per-category parallel times plus total."""
        return {
            GENERATION: self.generation_time,
            COMPUTATION: self.computation_time,
            COMMUNICATION: self.communication_time,
            "total": self.total_time,
        }

    def merge(self, other: "RunMetrics") -> None:
        """Append the phases of another run (e.g. nested algorithm calls)."""
        self.phases.extend(other.phases)
