"""Timing and traffic accounting for simulated distributed runs.

Figures 5-9 of the paper report, per run, the total running time and its
breakdown into RR-set *generation* time, seed-selection *computation* time
and *communication* time.  :class:`RunMetrics` accumulates exactly those
three categories.

Honesty contract (DESIGN.md): machine work is measured with real
wall-clock timers while the simulator executes machines one after another;
the *parallel* time of a phase is the maximum per-machine time, and
communication time is derived from counted payload bytes through the
:class:`~repro.cluster.network.NetworkModel`.  Nothing is extrapolated
from asymptotic formulas.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Sequence

__all__ = [
    "PhaseRecord",
    "RecoveryEvent",
    "RunMetrics",
    "GENERATION",
    "COMPUTATION",
    "COMMUNICATION",
]

GENERATION = "generation"
COMPUTATION = "computation"
COMMUNICATION = "communication"
_CATEGORIES = (GENERATION, COMPUTATION, COMMUNICATION)


@dataclass(frozen=True)
class PhaseRecord:
    """One metered phase: a map over machines or a communication round.

    ``round_index`` and ``rule`` are the adaptive-sampling annotations the
    :class:`~repro.core.driver.RoundDriver` stamps on every phase executed
    inside one of its rounds (``None`` for phases recorded outside a
    driver loop), letting tracing attribute time to doubling rounds.

    ``wire_sent`` / ``wire_received`` / ``round_trips`` are the *measured*
    transport counters the socket executor stamps on its generation
    phases: framed bytes written to and read from real sockets, and the
    number of completed request/response exchanges.  They stay zero for
    backends without a wire (``num_bytes`` keeps the backend-neutral
    payload accounting that the cross-executor conformance tests pin).
    """

    category: str
    label: str
    parallel_time: float
    machine_times: tuple[float, ...] = ()
    num_bytes: int = 0
    round_index: int | None = None
    rule: str | None = None
    wire_sent: int = 0
    wire_received: int = 0
    round_trips: int = 0

    @property
    def total_machine_time(self) -> float:
        """Summed (sequential) machine time — the work a single machine
        would have done."""
        return sum(self.machine_times)


@dataclass(frozen=True)
class RecoveryEvent:
    """One fault-tolerance incident during a run.

    ``kind`` is one of ``"crash"`` (a worker's attempt raised or its
    process died), ``"timeout"`` (the phase deadline expired before the
    payload arrived), ``"corruption"`` (the payload failed its CRC32
    check and was retransmitted/regenerated), ``"disconnect"`` (the
    worker's transport connection closed mid-attempt and was re-dialed),
    ``"straggler-wait"`` (the phase waited on an injected or real
    straggler) or ``"reassignment"`` (the machine exhausted its attempts
    and a survivor took over its quota).  ``time_lost`` is the simulated
    seconds the incident added to the run — wasted attempts, backoff,
    retransmissions, straggler excess — so experiment tables can report
    time-under-failure.
    """

    kind: str
    machine_id: int
    label: str
    attempt: int
    time_lost: float = 0.0
    round_index: int | None = None
    rule: str | None = None
    detail: str = ""

    def as_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (checkpointed with the driver state)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RecoveryEvent":
        return cls(**dict(data))


@dataclass
class RunMetrics:
    """Accumulated metrics of one distributed run."""

    phases: List[PhaseRecord] = field(default_factory=list)
    recovery_events: List[RecoveryEvent] = field(default_factory=list)
    #: Peak resident bytes across all per-machine RR stores, sampled by
    #: the round driver once per round (0 when no driver ran).
    rr_store_nbytes: int = 0
    #: Peak resident bytes of the master coverage state (counts vector or
    #: sketch register bank), sampled alongside :attr:`rr_store_nbytes`.
    coverage_nbytes: int = 0
    _round_index: int | None = field(default=None, init=False, repr=False, compare=False)
    _rule: str | None = field(default=None, init=False, repr=False, compare=False)

    @property
    def current_round(self) -> int | None:
        """The driver round currently being annotated, if any."""
        return self._round_index

    @contextmanager
    def annotated(self, round_index: int | None = None, rule: str | None = None) -> Iterator[None]:
        """Stamp every phase recorded inside the block with round/rule.

        The round driver wraps each adaptive-sampling round in this
        context, so generation, selection and communication phases carry
        the round they belong to without the inner algorithms (NEWGREEDI,
        the executors) knowing anything about rounds.  Nesting restores
        the outer annotation on exit.
        """
        previous = (self._round_index, self._rule)
        self._round_index, self._rule = round_index, rule
        try:
            yield
        finally:
            self._round_index, self._rule = previous

    def record_compute_phase(
        self,
        category: str,
        label: str,
        machine_times: list[float],
        num_bytes: int = 0,
        wire_sent: int = 0,
        wire_received: int = 0,
        round_trips: int = 0,
    ) -> None:
        """Record a phase executed by all machines in parallel.

        ``num_bytes`` is the payload traffic the phase itself moved —
        zero for the simulated backend (whose communication is metered
        by explicit gather/broadcast phases), and the framed compressed
        worker payloads for the multiprocessing backend's generation
        phases.  ``wire_sent`` / ``wire_received`` / ``round_trips`` are
        the socket backend's measured transport counters (see
        :class:`PhaseRecord`).
        """
        if category not in (GENERATION, COMPUTATION):
            raise ValueError(f"compute phases must be generation/computation, got {category}")
        self.phases.append(
            PhaseRecord(
                category=category,
                label=label,
                parallel_time=max(machine_times) if machine_times else 0.0,
                machine_times=tuple(machine_times),
                num_bytes=int(num_bytes),
                round_index=self._round_index,
                rule=self._rule,
                wire_sent=int(wire_sent),
                wire_received=int(wire_received),
                round_trips=int(round_trips),
            )
        )

    def record_communication(self, label: str, num_bytes: int, elapsed: float) -> None:
        """Record one communication round (bytes already costed by caller)."""
        self.phases.append(
            PhaseRecord(
                category=COMMUNICATION,
                label=label,
                parallel_time=elapsed,
                num_bytes=num_bytes,
                round_index=self._round_index,
                rule=self._rule,
            )
        )

    def record_recovery(
        self,
        kind: str,
        machine_id: int,
        label: str,
        attempt: int,
        time_lost: float = 0.0,
        detail: str = "",
    ) -> RecoveryEvent:
        """Record one fault-tolerance incident, stamped with the round."""
        event = RecoveryEvent(
            kind=kind,
            machine_id=machine_id,
            label=label,
            attempt=attempt,
            time_lost=time_lost,
            round_index=self._round_index,
            rule=self._rule,
            detail=detail,
        )
        self.recovery_events.append(event)
        return event

    # ------------------------------------------------------------------
    # Recovery aggregates
    # ------------------------------------------------------------------
    def recovery_events_of(self, kind: str) -> List[RecoveryEvent]:
        """Recovery events of one kind, in occurrence order."""
        return [e for e in self.recovery_events if e.kind == kind]

    @property
    def recovery_time(self) -> float:
        """Total simulated time lost to faults (retries, waits, handovers)."""
        return sum(e.time_lost for e in self.recovery_events)

    @property
    def degraded_machines(self) -> tuple[int, ...]:
        """Machines whose quota had to be reassigned, in first-loss order."""
        seen: List[int] = []
        for event in self.recovery_events:
            if event.kind == "reassignment" and event.machine_id not in seen:
                seen.append(event.machine_id)
        return tuple(seen)

    def failure_breakdown(self) -> Dict[str, float]:
        """Time-under-failure summary: lost seconds per incident kind,
        total, event count and degraded machine count."""
        per_kind: Dict[str, float] = {}
        for event in self.recovery_events:
            per_kind[event.kind] = per_kind.get(event.kind, 0.0) + event.time_lost
        per_kind["total_lost"] = self.recovery_time
        per_kind["events"] = float(len(self.recovery_events))
        per_kind["degraded_machines"] = float(len(self.degraded_machines))
        return per_kind

    def recovery_state(self) -> List[Dict[str, Any]]:
        """JSON-serializable recovery log (stored in driver checkpoints)."""
        return [event.as_dict() for event in self.recovery_events]

    def restore_recovery(self, events: Sequence[Mapping[str, Any]]) -> None:
        """Prepend a checkpointed recovery log to this run's (fresh) log."""
        self.recovery_events[:0] = [RecoveryEvent.from_dict(e) for e in events]

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def time_in(self, category: str) -> float:
        """Total simulated parallel time spent in one category."""
        return sum(p.parallel_time for p in self.phases_in(category))

    def phases_in(self, category: str) -> List[PhaseRecord]:
        """The recorded phases of one category, in execution order."""
        if category not in _CATEGORIES:
            raise ValueError(f"unknown category {category!r}")
        return [p for p in self.phases if p.category == category]

    def phases_in_round(self, round_index: int) -> List[PhaseRecord]:
        """The phases annotated with one driver round, in execution order."""
        return [p for p in self.phases if p.round_index == round_index]

    def rounds(self) -> List[int]:
        """The distinct driver round indices seen, in execution order."""
        seen: List[int] = []
        for phase in self.phases:
            if phase.round_index is not None and phase.round_index not in seen:
                seen.append(phase.round_index)
        return seen

    @property
    def generation_time(self) -> float:
        return self.time_in(GENERATION)

    @property
    def computation_time(self) -> float:
        return self.time_in(COMPUTATION)

    @property
    def communication_time(self) -> float:
        return self.time_in(COMMUNICATION)

    @property
    def total_time(self) -> float:
        """Simulated end-to-end parallel running time."""
        return sum(p.parallel_time for p in self.phases)

    @property
    def total_bytes(self) -> int:
        """Total bytes moved between machines."""
        return sum(p.num_bytes for p in self.phases)

    @property
    def wire_sent_bytes(self) -> int:
        """Total measured bytes written to real sockets (0 off-wire)."""
        return sum(p.wire_sent for p in self.phases)

    @property
    def wire_received_bytes(self) -> int:
        """Total measured bytes read from real sockets (0 off-wire)."""
        return sum(p.wire_received for p in self.phases)

    @property
    def total_round_trips(self) -> int:
        """Total completed request/response exchanges over real sockets."""
        return sum(p.round_trips for p in self.phases)

    def wire_summary(self) -> Dict[str, int]:
        """Measured transport traffic: sent/received bytes and round trips."""
        return {
            "wire_sent": self.wire_sent_bytes,
            "wire_received": self.wire_received_bytes,
            "round_trips": self.total_round_trips,
        }

    def record_memory(self, rr_store_nbytes: int = 0, coverage_nbytes: int = 0) -> None:
        """Fold one memory sample into the run's peak counters.

        Peaks, not sums: the driver samples once per round, and the
        sketch-vs-flat claim is about the largest resident footprint a
        run ever needs, measured in-band rather than estimated.
        """
        self.rr_store_nbytes = max(self.rr_store_nbytes, int(rr_store_nbytes))
        self.coverage_nbytes = max(self.coverage_nbytes, int(coverage_nbytes))

    def memory_summary(self) -> Dict[str, int]:
        """Peak memory: RR stores, coverage state, and their sum."""
        return {
            "rr_store_nbytes": self.rr_store_nbytes,
            "coverage_nbytes": self.coverage_nbytes,
            "peak_nbytes": self.rr_store_nbytes + self.coverage_nbytes,
        }

    @property
    def sequential_time(self) -> float:
        """Time a single machine doing all the work would have taken.

        Communication is excluded: a single machine does not communicate.
        """
        return sum(
            p.total_machine_time for p in self.phases if p.category != COMMUNICATION
        )

    def breakdown(self) -> Dict[str, float]:
        """The Fig 5-9 breakdown: per-category parallel times plus total."""
        return {
            GENERATION: self.generation_time,
            COMPUTATION: self.computation_time,
            COMMUNICATION: self.communication_time,
            "total": self.total_time,
        }

    def merge(self, other: "RunMetrics") -> None:
        """Append the phases of another run (e.g. nested algorithm calls)."""
        self.phases.extend(other.phases)
        self.recovery_events.extend(other.recovery_events)
        self.record_memory(other.rr_store_nbytes, other.coverage_nbytes)
