"""A simulated worker machine.

Each :class:`Machine` owns its slice of the distributed state — its RR
collection ``R_i`` and an independent random stream spawned from the
cluster seed — and executes metered work units.  Machines never touch each
other's state directly; all cross-machine data flow goes through the
cluster's communication accounting, mirroring the message-passing model of
the paper's Open MPI implementation.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Tuple

import numpy as np

from ..ris.flat import make_collection

__all__ = ["Machine"]


class Machine:
    """One simulated worker with private state and a private RNG.

    Parameters
    ----------
    machine_id:
        Index ``i`` of this machine (0-based; the master is external).
    rng:
        The machine's private random generator (spawned per machine so a
        run is reproducible for fixed ``(seed, num_machines)``).
    clock:
        Time source used to meter work; injectable for deterministic tests.
    slowdown:
        Relative speed handicap for heterogeneous-cluster simulation: a
        machine with ``slowdown = 2.0`` is metered as twice as slow.  The
        paper assumes identical machines (slowdown 1.0 everywhere); the
        heterogeneity ablation uses this to show when the even
        ``theta / l`` split stops being optimal.
    """

    def __init__(
        self,
        machine_id: int,
        rng: np.random.Generator,
        clock: Callable[[], float] = time.perf_counter,
        slowdown: float = 1.0,
    ) -> None:
        if slowdown <= 0:
            raise ValueError(f"slowdown must be positive, got {slowdown}")
        self.machine_id = machine_id
        self.rng = rng
        self._clock = clock
        self.slowdown = float(slowdown)
        #: The machine's RR store — a :class:`RRCollection` or
        #: :class:`~repro.ris.flat.FlatRRCollection`, per backend.
        self.collection = None
        #: Scratch space algorithms may attach per-run state to.
        self.state: dict[str, Any] = {}

    def init_collection(self, num_nodes: int, backend: str = "flat"):
        """Create (or reset) this machine's RR collection.

        ``backend="flat"`` (default) gives the CSR-backed store the
        vectorized coverage kernel reads natively; ``"reference"`` gives
        the dict-indexed :class:`RRCollection` oracle.
        """
        self.collection = make_collection(num_nodes, backend)
        return self.collection

    def set_rng_state(self, state: Any) -> None:
        """Fast-forward this machine's RNG to ``state``.

        Used by executors that ran the machine's draws elsewhere (e.g. a
        worker process) to keep the master-side generator in sync, so
        later draws continue the same stream.
        """
        self.rng.bit_generator.state = state

    def rng_state(self) -> Any:
        """Snapshot of this machine's RNG state (a fresh dict each call).

        The fault-tolerant executors take a snapshot before every
        generation attempt; restoring it via :meth:`set_rng_state` makes
        a retried (or reassigned) attempt replay the identical substream,
        which is what keeps runs under failure bit-identical to healthy
        runs.
        """
        return self.rng.bit_generator.state

    def run(self, work: Callable[["Machine"], Any]) -> Tuple[Any, float]:
        """Execute ``work(self)`` and return ``(result, elapsed_seconds)``.

        The elapsed time is scaled by the machine's ``slowdown`` factor.
        """
        start = self._clock()
        result = work(self)
        elapsed = (self._clock() - start) * self.slowdown
        return result, elapsed

    def __repr__(self) -> str:
        sets = self.collection.num_sets if self.collection is not None else 0
        return f"Machine(id={self.machine_id}, rr_sets={sets})"
