"""Network cost model for the simulated cluster.

The paper runs on two platforms: a 17-node cluster wired through a 1 Gbps
switch, and an 80-core shared-memory server.  Communication in both cases
is master-slave: slaves send coverage vectors / decrement maps to the
master, and the master broadcasts the chosen seed back.

:class:`NetworkModel` converts counted payload bytes into simulated
transfer time.  Transfers to/from the master are serialised on the
master's link (a 1 Gbps port can only drain one slave at a time), which is
what makes communication time grow with the number of machines in Figs 5-9
while staying an order of magnitude below computation.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["NetworkModel", "gigabit_cluster", "shared_memory_server"]


@dataclass(frozen=True)
class NetworkModel:
    """Latency + bandwidth model of one point-to-point transfer.

    Attributes
    ----------
    bandwidth:
        Link bandwidth in bytes per second.
    latency:
        Per-message fixed cost in seconds.
    name:
        Human-readable label used in experiment output.
    """

    bandwidth: float
    latency: float
    name: str = "custom"

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {self.bandwidth}")
        if self.latency < 0:
            raise ValueError(f"latency must be non-negative, got {self.latency}")

    def transfer_time(self, num_bytes: int) -> float:
        """Time for one message of ``num_bytes`` over this link."""
        if num_bytes < 0:
            raise ValueError(f"num_bytes must be non-negative, got {num_bytes}")
        return self.latency + num_bytes / self.bandwidth

    def sequential_transfers(self, byte_sizes: list[int]) -> float:
        """Time to drain several messages serially over one link.

        Models a master gathering from (or broadcasting to) every slave
        through its single port.
        """
        return sum(self.transfer_time(b) for b in byte_sizes)

    def retransmission_time(self, num_bytes: int) -> float:
        """Time to recover a payload that failed its checksum on arrival.

        One latency for the master's NACK, then a full re-send of the
        payload.  The fault-tolerant simulated executor charges this when
        an injected corruption fires — the batch content is intact on the
        worker, only the transfer is repeated.
        """
        return self.latency + self.transfer_time(num_bytes)


def gigabit_cluster() -> NetworkModel:
    """The paper's cluster fabric: 1 Gbps switch.

    The per-message latency is set to 1 microsecond rather than a
    realistic ~0.1 ms TCP round trip: the stand-in workloads are scaled
    down by roughly three orders of magnitude from the paper's datasets
    (DESIGN.md), so fixed per-message costs must be scaled alongside the
    per-byte costs or they would swamp the breakdown.  Bandwidth is kept
    at the true 1 Gbps because payload sizes (coverage vectors, decrement
    maps) already scale with the graphs.
    """
    return NetworkModel(bandwidth=125_000_000.0, latency=1e-6, name="1Gbps-cluster")


def shared_memory_server() -> NetworkModel:
    """The paper's multi-core server: inter-core copies through memory.

    Bandwidth is effectively memory bandwidth shared across cores; latency
    is a few microseconds of synchronisation overhead per exchange.
    """
    return NetworkModel(bandwidth=20_000_000_000.0, latency=1e-7, name="shared-memory")
