"""The simulated master-slave cluster.

:class:`SimulatedCluster` executes per-machine work units sequentially
while metering each machine's wall-clock time; the *simulated parallel
time* of a phase is the maximum per-machine time (machines would have run
concurrently), and every master<->slave exchange is charged to the network
model.  This reproduces the timing structure of the paper's MPI deployment
without requiring 64 physical cores.

Typical usage by an algorithm::

    cluster = SimulatedCluster(num_machines=8, network=gigabit_cluster(), seed=1)
    results = cluster.map(GENERATION, "rr-generation", work)   # metered map
    cluster.gather("coverage-vectors", payload_sizes)          # slaves -> master
    cluster.broadcast("new-seed", 8)                           # master -> slaves
    cluster.metrics.breakdown()
"""

from __future__ import annotations

import time
from typing import Any, Callable, List, Sequence

import numpy as np

from .machine import Machine
from .metrics import COMPUTATION, RunMetrics
from .network import NetworkModel, shared_memory_server

__all__ = ["SimulatedCluster", "MachineFailure"]


class MachineFailure(RuntimeError):
    """A worker machine's task raised during a map phase.

    Carries the failing machine id and the phase label so the operator
    can attribute the failure; the original exception is chained as the
    ``__cause__``.
    """

    def __init__(self, machine_id: int, label: str) -> None:
        super().__init__(f"machine {machine_id} failed during phase {label!r}")
        self.machine_id = machine_id
        self.label = label


class SimulatedCluster:
    """A master plus ``num_machines`` simulated slave machines.

    Parameters
    ----------
    num_machines:
        Number of worker machines ``l``.
    network:
        Cost model for master<->slave transfers; defaults to the
        shared-memory server profile.
    seed:
        Root seed; machine RNGs are spawned from it so results are
        reproducible for fixed ``(seed, num_machines)``.
    clock:
        Injectable time source for deterministic tests.
    slowdowns:
        Optional per-machine speed handicaps for heterogeneous clusters
        (see :class:`~repro.cluster.machine.Machine`); defaults to a
        homogeneous cluster, the paper's setting.
    """

    def __init__(
        self,
        num_machines: int,
        network: NetworkModel | None = None,
        seed: int | np.random.SeedSequence = 0,
        clock: Callable[[], float] = time.perf_counter,
        slowdowns: Sequence[float] | None = None,
    ) -> None:
        if num_machines < 1:
            raise ValueError(f"num_machines must be >= 1, got {num_machines}")
        if slowdowns is not None and len(slowdowns) != num_machines:
            raise ValueError("slowdowns must have one entry per machine")
        self.network = network if network is not None else shared_memory_server()
        seed_seq = (
            seed
            if isinstance(seed, np.random.SeedSequence)
            else np.random.SeedSequence(seed)
        )
        children = seed_seq.spawn(num_machines + 1)
        #: The master's own RNG (used e.g. for tie-breaking decisions).
        self.master_rng = np.random.default_rng(children[0])
        self.machines: List[Machine] = [
            Machine(
                i,
                np.random.default_rng(children[i + 1]),
                clock=clock,
                slowdown=1.0 if slowdowns is None else float(slowdowns[i]),
            )
            for i in range(num_machines)
        ]
        self.metrics = RunMetrics()
        self._clock = clock

    @property
    def num_machines(self) -> int:
        return len(self.machines)

    # ------------------------------------------------------------------
    # Metered execution
    # ------------------------------------------------------------------
    def map(
        self,
        category: str,
        label: str,
        work: Callable[[Machine], Any],
    ) -> List[Any]:
        """Run ``work`` on every machine; meter and record the phase.

        ``category`` must be :data:`~repro.cluster.metrics.GENERATION` or
        :data:`~repro.cluster.metrics.COMPUTATION`.  Returns the per-machine
        results in machine order.
        """
        results: List[Any] = []
        times: List[float] = []
        for machine in self.machines:
            try:
                result, elapsed = machine.run(work)
            except Exception as exc:
                raise MachineFailure(machine.machine_id, label) from exc
            results.append(result)
            times.append(elapsed)
        self.metrics.record_compute_phase(category, label, times)
        return results

    def run_on_master(self, label: str, work: Callable[[], Any]) -> Any:
        """Run master-side work (e.g. the greedy scan) as a computation phase."""
        start = self._clock()
        result = work()
        elapsed = self._clock() - start
        self.metrics.record_compute_phase(COMPUTATION, label, [elapsed])
        return result

    # ------------------------------------------------------------------
    # Communication accounting
    # ------------------------------------------------------------------
    def gather(self, label: str, byte_sizes: Sequence[int]) -> None:
        """Charge a slaves->master gather; one message per slave."""
        if len(byte_sizes) != self.num_machines:
            raise ValueError(
                f"expected {self.num_machines} payload sizes, got {len(byte_sizes)}"
            )
        elapsed = self.network.sequential_transfers(list(byte_sizes))
        self.metrics.record_communication(label, int(sum(byte_sizes)), elapsed)

    def broadcast(self, label: str, num_bytes: int) -> None:
        """Charge a master->slaves broadcast of ``num_bytes`` per slave."""
        sizes = [num_bytes] * self.num_machines
        elapsed = self.network.sequential_transfers(sizes)
        self.metrics.record_communication(label, num_bytes * self.num_machines, elapsed)

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def init_collections(self, num_nodes: int, backend: str = "flat") -> None:
        """Give every machine a fresh RR collection over ``num_nodes`` nodes.

        ``backend`` selects the store flavour per machine — ``"flat"``
        (CSR arrays, the default) or ``"reference"`` (dict inverted
        index); see :func:`repro.ris.flat.make_collection`.
        """
        for machine in self.machines:
            machine.init_collection(num_nodes, backend=backend)

    def split_count(self, total: int) -> List[int]:
        """Split ``total`` work items across machines as evenly as possible.

        The first ``total % l`` machines receive one extra item, so counts
        differ by at most one (the paper's ``theta / l`` split).
        """
        base, extra = divmod(total, self.num_machines)
        return [base + (1 if i < extra else 0) for i in range(self.num_machines)]

    def split_count_weighted(self, total: int) -> List[int]:
        """Split work proportionally to machine speed (``1 / slowdown``).

        On a homogeneous cluster this coincides with :meth:`split_count`;
        on a heterogeneous one it equalises per-machine finish times.
        Largest-remainder rounding keeps the sum exact.
        """
        speeds = np.asarray([1.0 / m.slowdown for m in self.machines])
        raw = total * speeds / speeds.sum()
        shares = np.floor(raw).astype(int)
        remainder = total - int(shares.sum())
        if remainder:
            order = np.argsort(-(raw - shares))
            shares[order[:remainder]] += 1
        return [int(s) for s in shares]

    def __repr__(self) -> str:
        return (
            f"SimulatedCluster(num_machines={self.num_machines}, "
            f"network={self.network.name!r})"
        )
