"""Declarative executor specification: one object instead of kwarg soup.

Historically the executor choice travelled as an ad-hoc string
(``executor="simulated"|"multiprocessing"``) plus backend-specific
keywords (``processes=``, ``start_method=``, ``zero_copy=``) threaded
through :class:`~repro.core.config.RunConfig`, every ``*_from_config``
entry point, :class:`~repro.core.pool.SamplePool` and ``repro serve``.
Adding the socket backend would have meant another round of keyword
plumbing through all of them.

An :class:`ExecutorSpec` carries the backend *and* its validated options
as one frozen value:

* :class:`SimulatedSpec` — sequential metered execution (no options);
* :class:`MultiprocessingSpec` — local OS-process fan-out
  (``processes``, ``start_method``, ``zero_copy``);
* :class:`SocketSpec` — TCP workers
  (:class:`~repro.cluster.socket_executor.SocketExecutor`): either
  ``addresses`` of externally started workers or locally spawned
  loopback workers, plus connection/heartbeat deadlines.

Every spec kind registers itself in :data:`EXECUTOR_SPECS`; the single
factory :func:`~repro.cluster.executor.make_executor` resolves a spec —
or its string shorthand — into the executor instance.

String shorthands (the CLI surface)
-----------------------------------
``parse`` understands::

    simulated
    multiprocessing              # pool sized to the machine count
    multiprocessing:8            # 8 worker processes
    socket                       # spawn loopback workers, one per machine
    socket:4                     # spawn 4 loopback workers
    socket:127.0.0.1:9100,9101   # connect to externally started workers
    socket:h1:9100,9101;h2:9100  # multiple hosts (';'-separated groups)

``describe()`` is the inverse: it renders a spec back into its canonical
shorthand, so configs stay JSON-serializable.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Callable, ClassVar, Dict, Tuple, Type

__all__ = [
    "ExecutorSpec",
    "SimulatedSpec",
    "MultiprocessingSpec",
    "SocketSpec",
    "EXECUTOR_SPECS",
    "EXECUTOR_KINDS",
    "register_spec",
    "as_spec",
    "spec_summary",
]

#: Registry mapping spec kind -> spec class; executor construction is
#: resolved against it by :func:`repro.cluster.executor.make_executor`.
EXECUTOR_SPECS: Dict[str, Type["ExecutorSpec"]] = {}


def register_spec(cls: Type["ExecutorSpec"]) -> Type["ExecutorSpec"]:
    """Class decorator adding a spec kind to :data:`EXECUTOR_SPECS`."""
    if not cls.kind or cls.kind in EXECUTOR_SPECS:
        raise ValueError(f"executor spec kind {cls.kind!r} is empty or taken")
    EXECUTOR_SPECS[cls.kind] = cls
    return cls


def _kinds() -> Tuple[str, ...]:
    return tuple(EXECUTOR_SPECS)


@dataclass(frozen=True)
class ExecutorSpec:
    """Base class of all executor specifications.

    Subclasses set :attr:`kind`, add their option fields (all with
    defaults, so ``Spec()`` is always valid) and override
    :meth:`validate` / :meth:`describe` as needed.
    """

    kind: ClassVar[str] = ""

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> "ExecutorSpec":
        """Check every option; raise ``ValueError`` naming the bad one.

        Returns ``self`` so call sites can chain ``spec.validate()``.
        """
        return self

    def with_overrides(self, **changes) -> "ExecutorSpec":
        """A copy with the given option fields replaced (frozen-safe)."""
        return replace(self, **changes)

    # ------------------------------------------------------------------
    # String form
    # ------------------------------------------------------------------
    def describe(self) -> str:
        """The spec's canonical string shorthand."""
        return self.kind

    @staticmethod
    def parse(text: str) -> "ExecutorSpec":
        """Parse a string shorthand (see the module docstring).

        Raises ``ValueError`` for unknown kinds or malformed options.
        """
        head, sep, rest = text.strip().partition(":")
        cls = EXECUTOR_SPECS.get(head)
        if cls is None:
            raise ValueError(
                f"unknown executor {head!r}; expected one of {_kinds()}"
            )
        return cls._parse_options(rest if sep else "").validate()

    @classmethod
    def _parse_options(cls, rest: str) -> "ExecutorSpec":
        if rest:
            raise ValueError(
                f"executor {cls.kind!r} takes no ':'-options, got {rest!r}"
            )
        return cls()

    @staticmethod
    def coerce(value) -> "ExecutorSpec":
        """Coerce a spec, a shorthand string, or ``None`` to a spec.

        ``None`` means the default (:class:`SimulatedSpec`).  This is the
        one funnel every entry point pushes its ``executor`` argument
        through, so specs and strings are interchangeable everywhere.
        """
        if value is None:
            return SimulatedSpec()
        if isinstance(value, ExecutorSpec):
            return value.validate()
        if isinstance(value, str):
            return ExecutorSpec.parse(value)
        raise ValueError(
            f"executor must be an ExecutorSpec or one of {_kinds()} "
            f"(string shorthands allowed), got {value!r}"
        )

    def __str__(self) -> str:
        return self.describe()


# `as_spec` reads better at call sites that already hold "maybe a spec".
as_spec: Callable[[object], ExecutorSpec] = ExecutorSpec.coerce


@register_spec
@dataclass(frozen=True)
class SimulatedSpec(ExecutorSpec):
    """Sequential metered execution on the simulated cluster."""

    kind: ClassVar[str] = "simulated"


@dataclass(frozen=True)
class _StartMethodOptions(ExecutorSpec):
    """Shared validation for specs that spawn local processes."""

    start_method: str | None = None

    def validate(self) -> "ExecutorSpec":
        if self.start_method is not None and self.start_method not in (
            "fork",
            "spawn",
            "forkserver",
        ):
            raise ValueError(
                f"{self.kind} start_method must be fork/spawn/forkserver "
                f"or None, got {self.start_method!r}"
            )
        return self


@register_spec
@dataclass(frozen=True)
class MultiprocessingSpec(_StartMethodOptions):
    """Local OS-process fan-out through a persistent GenerationPool.

    Parameters
    ----------
    processes:
        Worker-pool size; ``None`` sizes the pool to the machine count,
        capped at the CPU count.
    start_method:
        ``multiprocessing`` start method; ``None`` defers to
        ``REPRO_MP_START_METHOD``, then ``fork`` where available.
    zero_copy:
        ``True`` requires the shared-memory graph broadcast, ``False``
        forces the copy-based one, ``None`` (default) tries shared
        memory and falls back.
    """

    kind: ClassVar[str] = "multiprocessing"
    processes: int | None = None
    zero_copy: bool | None = None

    def validate(self) -> "ExecutorSpec":
        super().validate()
        if self.processes is not None and self.processes < 1:
            raise ValueError(
                f"multiprocessing processes must be >= 1 or None, got {self.processes}"
            )
        return self

    def describe(self) -> str:
        return self.kind if self.processes is None else f"{self.kind}:{self.processes}"

    @classmethod
    def _parse_options(cls, rest: str) -> "ExecutorSpec":
        if not rest:
            return cls()
        try:
            return cls(processes=int(rest))
        except ValueError:
            raise ValueError(
                f"multiprocessing options must be a worker count, got {rest!r}"
            ) from None


@register_spec
@dataclass(frozen=True)
class SocketSpec(_StartMethodOptions):
    """TCP workers, each logical machine served over a persistent socket.

    Parameters
    ----------
    addresses:
        ``(host, port)`` pairs of externally started workers
        (``repro worker --port ...``).  ``None`` (default) spawns
        loopback worker processes owned by the executor.
    workers:
        How many loopback workers to spawn when ``addresses`` is
        ``None``; defaults to one per machine, capped at the CPU count.
    start_method:
        Start method for spawned loopback workers.
    connect_timeout:
        Seconds allowed for connecting + enrolling each worker.
    heartbeat_timeout:
        Seconds a heartbeat ping may take before the worker is
        considered unreachable.
    graph_path:
        When set, enrollment tells workers to load the graph from this
        ``.npz`` file (:func:`repro.graphs.io.load_npz`) instead of
        shipping it over the wire — the real-cluster mode where every
        machine has the dataset on local disk.
    zero_copy:
        Shared-memory graph broadcast for *spawned loopback* workers:
        ``True`` requires it, ``False`` ships the graph inline over the
        socket, ``None`` (default) tries shared memory and falls back.
        Ignored for external ``addresses``, which always enroll over
        the wire (or from ``graph_path``).
    """

    kind: ClassVar[str] = "socket"
    addresses: Tuple[Tuple[str, int], ...] | None = None
    workers: int | None = None
    connect_timeout: float = 10.0
    heartbeat_timeout: float = 5.0
    graph_path: str | None = None
    zero_copy: bool | None = None

    def __post_init__(self) -> None:
        if self.addresses is not None:
            frozen = tuple((str(h), int(p)) for h, p in self.addresses)
            object.__setattr__(self, "addresses", frozen)

    def validate(self) -> "ExecutorSpec":
        super().validate()
        if self.addresses is not None:
            if not self.addresses:
                raise ValueError("socket addresses must be non-empty or None")
            for host, port in self.addresses:
                if not host or not 0 < port < 65536:
                    raise ValueError(
                        f"socket address {(host, port)!r} is not a valid (host, port)"
                    )
            if self.workers is not None:
                raise ValueError(
                    "socket workers= applies to spawned loopback workers only; "
                    "with addresses= the worker count is len(addresses)"
                )
        if self.workers is not None and self.workers < 1:
            raise ValueError(f"socket workers must be >= 1 or None, got {self.workers}")
        if self.connect_timeout <= 0:
            raise ValueError(
                f"socket connect_timeout must be positive, got {self.connect_timeout}"
            )
        if self.heartbeat_timeout <= 0:
            raise ValueError(
                f"socket heartbeat_timeout must be positive, got {self.heartbeat_timeout}"
            )
        return self

    def describe(self) -> str:
        if self.addresses is not None:
            groups: list[str] = []
            for host, port in self.addresses:
                prefix = f"{host}:"
                if groups and groups[-1].startswith(prefix):
                    groups[-1] += f",{port}"
                else:
                    groups.append(f"{host}:{port}")
            return f"{self.kind}:" + ";".join(groups)
        return self.kind if self.workers is None else f"{self.kind}:{self.workers}"

    @classmethod
    def _parse_options(cls, rest: str) -> "ExecutorSpec":
        if not rest:
            return cls()
        if rest.isdigit():
            return cls(workers=int(rest))
        addresses: list[Tuple[str, int]] = []
        for group in filter(None, (g.strip() for g in rest.split(";"))):
            host, sep, ports = group.rpartition(":")
            if not sep or not host:
                raise ValueError(
                    f"socket address group {group!r} must be HOST:PORT[,PORT...]"
                )
            for part in filter(None, (p.strip() for p in ports.split(","))):
                try:
                    addresses.append((host, int(part)))
                except ValueError:
                    raise ValueError(
                        f"socket port {part!r} in {group!r} is not an integer"
                    ) from None
        if not addresses:
            raise ValueError(f"socket options {rest!r} name no ports")
        return cls(addresses=tuple(addresses))


#: Kinds registered by this module, in registration order.  Third-party
#: kinds added later via :func:`register_spec` appear in
#: ``EXECUTOR_SPECS`` but not here.
EXECUTOR_KINDS: Tuple[str, ...] = _kinds()


def spec_summary(spec: ExecutorSpec) -> dict:
    """A JSON-friendly dump of a spec (kind plus non-default options)."""
    out = {"kind": spec.kind}
    for field in fields(spec):
        value = getattr(spec, field.name)
        if value != field.default:
            out[field.name] = value
    return out
