"""Fault injection and recovery policy for the executor layer.

The paper's deployment target is a 17-node Open MPI cluster; at that
scale machines crash, payloads arrive corrupted and stragglers dominate
tail latency.  This module gives the executors a *deterministic* fault
model so runs under failure can be tested, metered and — crucially —
proven to return the bit-identical seed set a healthy run returns:

* :class:`FaultSpec` / :class:`FaultPlan` describe seeded, injected
  faults keyed by ``(machine, driver round, attempt)`` — a crash, a
  hard worker kill, a straggler slowdown factor, a corrupted payload or
  a dropped payload;
* :class:`RetryPolicy` governs recovery: how many attempts a machine
  gets, the phase timeout after which the master declares a worker lost,
  the backoff between attempts, and whether an exhausted machine's
  generation quota is reassigned to a survivor.

Determinism argument (also in ``docs/architecture.md``): every RR set's
content is drawn from the *logical* machine's private RNG stream.  A
failed attempt restores the stream to its pre-attempt snapshot, so the
retry — on the same machine or reassigned to any survivor — replays the
identical substream for that ``(machine, round, attempt)`` slot and
produces the identical batch, appended to the logical machine's store.
Faults therefore change only the metered times and the recovery log,
never the collections or the selected seeds.

Timing semantics: under :class:`~repro.cluster.executor.SimulatedExecutor`
timeouts, backoff and straggler waits are charged in *simulated* time
(they appear in the metrics, nothing sleeps); under
:class:`~repro.cluster.executor.MultiprocessingExecutor` the phase
timeout and backoff are real wall-clock — a hung or ``kill -9``'d worker
really is detected by the deadline.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable, Sequence, Tuple

import numpy as np

__all__ = [
    "CRASH",
    "CRASH_HARD",
    "STRAGGLER",
    "CORRUPT",
    "DROP",
    "DISCONNECT",
    "FAULT_KINDS",
    "FAILURE_KINDS",
    "FaultSpec",
    "FaultPlan",
    "RetryPolicy",
    "DEFAULT_RETRY",
    "PhaseTimeoutError",
    "FaultToleranceExceeded",
]

#: The worker raises during the attempt; the draw is lost.
CRASH = "crash"
#: The worker process dies without a word (``kill -9``); only the phase
#: timeout detects it.  Simulated executors treat it like ``crash``.
CRASH_HARD = "crash-hard"
#: The machine completes the attempt ``factor`` times slower.
STRAGGLER = "straggler"
#: The payload arrives but fails its CRC32 check; a retransmission is
#: requested.
CORRUPT = "corrupt"
#: The payload never arrives; only the phase timeout detects it.
DROP = "drop"
#: The machine's transport connection closes mid-attempt.  The socket
#: executor detects this *immediately* (EOF/reset on the stream, no
#: deadline wait) and reconnects before retrying; backends without a
#: connection treat it like a silent loss.
DISCONNECT = "disconnect"

FAULT_KINDS: Tuple[str, ...] = (CRASH, CRASH_HARD, STRAGGLER, CORRUPT, DROP, DISCONNECT)

#: Kinds that make an attempt fail outright (vs. merely slowing it).
FAILURE_KINDS: Tuple[str, ...] = (CRASH, CRASH_HARD, DROP, DISCONNECT)

_SPEC_RE = re.compile(
    r"^(?P<kind>crash-hard|crash|straggler|corrupt|drop|disconnect)"
    r"@m(?P<machine>\d+)"
    r"(?:r(?P<round>\d+|\*))?"
    r"(?:a(?P<attempt>\d+|\*))?"
    r"(?:x(?P<factor>\d+(?:\.\d+)?))?$"
)


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault, keyed by ``(machine, round, attempt)``.

    Parameters
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    machine:
        The logical machine the fault strikes.
    round_index:
        Driver round the fault fires in (1-based); ``None`` fires in
        every round (including generation outside any driver round).
    attempt:
        Attempt number the fault fires on (1-based); ``None`` fires on
        every attempt.  Transient faults use ``attempt=1`` so the first
        retry succeeds; ``None`` models a persistent failure that forces
        reassignment.
    factor:
        Slowdown multiplier for :data:`STRAGGLER` faults (ignored by the
        other kinds).
    """

    kind: str
    machine: int
    round_index: int | None = None
    attempt: int | None = 1
    factor: float = 2.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}")
        if self.machine < 0:
            raise ValueError(f"machine must be >= 0, got {self.machine}")
        if self.round_index is not None and self.round_index < 1:
            raise ValueError(f"round_index must be >= 1, got {self.round_index}")
        if self.attempt is not None and self.attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {self.attempt}")
        if self.kind == STRAGGLER and self.factor <= 1.0:
            raise ValueError(f"straggler factor must be > 1, got {self.factor}")

    def matches(self, machine_id: int, round_index: int | None, attempt: int) -> bool:
        """Does this fault fire for ``(machine_id, round_index, attempt)``?"""
        if self.machine != machine_id:
            return False
        if self.round_index is not None and round_index != self.round_index:
            return False
        if self.attempt is not None and attempt != self.attempt:
            return False
        return True

    def describe(self) -> str:
        """The spec in :meth:`FaultPlan.parse` syntax."""
        text = f"{self.kind}@m{self.machine}"
        if self.round_index is not None:
            text += f"r{self.round_index}"
        if self.attempt != 1:
            text += f"a{'*' if self.attempt is None else self.attempt}"
        if self.kind == STRAGGLER:
            text += f"x{self.factor:g}"
        return text


class FaultPlan:
    """A deterministic set of injected faults.

    An *empty* plan injects nothing but still engages the executors'
    fault-tolerant bookkeeping (attempt loops, CRC verification, event
    accounting) — the healthy-path overhead the benchmark gate meters.
    ``faults=None`` on an executor disables the machinery entirely.
    """

    def __init__(self, specs: Iterable[FaultSpec] = ()) -> None:
        self.specs: Tuple[FaultSpec, ...] = tuple(specs)

    # ------------------------------------------------------------------
    # Queries the executors make
    # ------------------------------------------------------------------
    def failure_for(
        self, machine_id: int, round_index: int | None, attempt: int
    ) -> FaultSpec | None:
        """The first crash/drop/corrupt fault firing for this slot, if any.

        Hard failures (:data:`FAILURE_KINDS`) take precedence over
        corruption: a machine that died cannot also deliver a payload.
        """
        corrupt = None
        for spec in self.specs:
            if spec.kind == STRAGGLER or not spec.matches(machine_id, round_index, attempt):
                continue
            if spec.kind in FAILURE_KINDS:
                return spec
            if corrupt is None:
                corrupt = spec
        return corrupt

    def straggler_factor(self, machine_id: int, round_index: int | None, attempt: int) -> float:
        """Combined slowdown factor of every straggler fault firing here."""
        factor = 1.0
        for spec in self.specs:
            if spec.kind == STRAGGLER and spec.matches(machine_id, round_index, attempt):
                factor *= spec.factor
        return factor

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse the CLI syntax: ``;``-separated ``kind@m<id>[r<round>][a<attempt>][x<factor>]``.

        ``r``/``a`` default to round ``*`` (every round) and attempt ``1``
        (``*`` for stragglers, which slow every attempt); ``x`` is the
        straggler slowdown factor.  Examples::

            crash@m1r2          machine 1 crashes in round 2, first attempt
            straggler@m0x3.5    machine 0 runs 3.5x slow in every round
            corrupt@m2r1        machine 2's round-1 payload fails its CRC
            crash@m1a*          machine 1 dies on every attempt (reassignment)
            disconnect@m0r1     machine 0's connection drops in round 1
        """
        specs = []
        for part in filter(None, (piece.strip() for piece in re.split(r"[;,]", text))):
            match = _SPEC_RE.match(part)
            if match is None:
                raise ValueError(
                    f"cannot parse fault spec {part!r}; expected "
                    "kind@m<id>[r<round>][a<attempt>][x<factor>] with kind one of "
                    f"{FAULT_KINDS}"
                )
            kind = match.group("kind")
            round_field = match.group("round")
            attempt_field = match.group("attempt")
            if attempt_field is None:
                attempt: int | None = None if kind == STRAGGLER else 1
            else:
                attempt = None if attempt_field == "*" else int(attempt_field)
            specs.append(
                FaultSpec(
                    kind=kind,
                    machine=int(match.group("machine")),
                    round_index=None if round_field in (None, "*") else int(round_field),
                    attempt=attempt,
                    factor=float(match.group("factor") or 2.0),
                )
            )
        return cls(specs)

    @classmethod
    def seeded(
        cls,
        seed: int,
        num_machines: int,
        num_rounds: int,
        p_crash: float = 0.1,
        p_straggler: float = 0.1,
        p_corrupt: float = 0.05,
        straggler_factor: float = 3.0,
    ) -> "FaultPlan":
        """A reproducible random plan: iid faults per ``(machine, round)``.

        The same ``(seed, num_machines, num_rounds, rates)`` always yields
        the same plan, so randomized failure experiments are replayable.
        """
        rng = np.random.default_rng(seed)
        specs = []
        for round_index in range(1, num_rounds + 1):
            for machine in range(num_machines):
                draw = rng.random(3)
                if draw[0] < p_crash:
                    specs.append(FaultSpec(CRASH, machine, round_index, attempt=1))
                if draw[1] < p_straggler:
                    specs.append(
                        FaultSpec(
                            STRAGGLER,
                            machine,
                            round_index,
                            attempt=None,
                            factor=straggler_factor,
                        )
                    )
                if draw[2] < p_corrupt:
                    specs.append(FaultSpec(CORRUPT, machine, round_index, attempt=1))
        return cls(specs)

    def describe(self) -> str:
        """The plan in :meth:`parse` syntax (empty string for no faults)."""
        return ";".join(spec.describe() for spec in self.specs)

    def __len__(self) -> int:
        return len(self.specs)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FaultPlan) and self.specs == other.specs

    def __hash__(self) -> int:
        return hash(self.specs)

    def __repr__(self) -> str:
        return f"FaultPlan({self.describe()!r})"


@dataclass(frozen=True)
class RetryPolicy:
    """Recovery policy the executors apply when a fault fires.

    Parameters
    ----------
    max_attempts:
        Attempts each machine gets per generation phase (>= 1) before its
        quota is handed over.
    phase_timeout:
        Seconds after which an unresponsive machine is declared lost —
        simulated time under the simulated executor, real wall-clock
        under multiprocessing.  ``None`` disables timeout detection (a
        hard-killed worker then hangs the phase, the pre-fault-layer
        behavior).
    backoff:
        Base delay before attempt ``a`` of ``backoff * 2**(a - 2)``
        seconds (exponential, nothing before the first attempt).
    reassign:
        After ``max_attempts`` failures, reassign the machine's quota to
        a survivor (default).  When ``False`` the run fails fast with
        :class:`PhaseTimeoutError` / :class:`FaultToleranceExceeded`.
    """

    max_attempts: int = 3
    phase_timeout: float | None = None
    backoff: float = 0.0
    reassign: bool = True

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.phase_timeout is not None and self.phase_timeout <= 0:
            raise ValueError(f"phase_timeout must be positive, got {self.phase_timeout}")
        if self.backoff < 0:
            raise ValueError(f"backoff must be >= 0, got {self.backoff}")

    def delay_before(self, attempt: int) -> float:
        """Exponential-backoff delay before ``attempt`` (0 for the first)."""
        if attempt <= 1 or self.backoff == 0.0:
            return 0.0
        return self.backoff * 2.0 ** (attempt - 2)


#: The executors' default: three attempts, no timeout, no backoff.
DEFAULT_RETRY = RetryPolicy()


class PhaseTimeoutError(RuntimeError):
    """A phase's machines stayed unresponsive past every allowed attempt.

    Raised only when the :class:`RetryPolicy` forbids reassignment (or no
    survivor exists); otherwise the quota moves to a survivor and the
    timeout is just a recovery event in the metrics.
    """

    def __init__(self, label: str, machine_ids: Sequence[int], timeout: float | None) -> None:
        ids = ", ".join(str(i) for i in machine_ids)
        super().__init__(
            f"phase {label!r}: machine(s) {ids} unresponsive after "
            f"{'no timeout' if timeout is None else f'{timeout:g}s timeout'} "
            "on every allowed attempt"
        )
        self.label = label
        self.machine_ids = tuple(machine_ids)
        self.timeout = timeout


class FaultToleranceExceeded(RuntimeError):
    """Recovery is impossible: retries exhausted and no survivor left."""

    def __init__(self, label: str, machine_ids: Sequence[int], attempts: int) -> None:
        ids = ", ".join(str(i) for i in machine_ids)
        super().__init__(
            f"phase {label!r}: machine(s) {ids} failed all {attempts} attempt(s) "
            "and no recovery path remains"
        )
        self.label = label
        self.machine_ids = tuple(machine_ids)
        self.attempts = attempts
