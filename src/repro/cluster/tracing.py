"""Textual rendering of a distributed run's phase timeline.

``RunMetrics`` records every metered phase of a DIIMM / NEWGREEDI run;
this module turns that record into something a human can scan:

* :func:`summarize_phases` groups phases by label prefix (the algorithm's
  own naming, e.g. ``search-3/newgreedi/map``) and aggregates times;
* :func:`summarize_rounds` groups phases by the round/stopping-rule
  annotations the :class:`~repro.core.driver.RoundDriver` stamps on them,
  giving the per-doubling-round cost curve directly;
* :func:`render_timeline` draws a proportional text Gantt of the top
  phase groups, the quickest way to see *where* a run spent its time and
  whether a figure's breakdown makes sense;
* :func:`summarize_recovery` aggregates the fault-tolerance log — one row
  per (kind, machine) with attempts and time lost — so a run under
  injected failures shows *what* went wrong and what the recovery cost.
"""

from __future__ import annotations

from typing import Dict, List

from .metrics import COMMUNICATION, COMPUTATION, GENERATION, RunMetrics

__all__ = [
    "summarize_phases",
    "summarize_rounds",
    "summarize_recovery",
    "render_timeline",
]


def _group_of(label: str, depth: int) -> str:
    return "/".join(label.split("/")[:depth])


def summarize_phases(
    metrics: RunMetrics, depth: int = 1, category: str | None = None
) -> List[dict]:
    """Aggregate phases by the first ``depth`` segments of their label.

    Returns one row per group, ordered by first appearance, with the
    summed parallel time, category mix, phase count and bytes moved.
    ``category`` restricts the summary to one metrics category (e.g. only
    generation phases); ``None`` summarises everything.
    """
    if depth < 1:
        raise ValueError(f"depth must be >= 1, got {depth}")
    phases = metrics.phases if category is None else metrics.phases_in(category)
    order: List[str] = []
    grouped: Dict[str, dict] = {}
    for phase in phases:
        key = _group_of(phase.label, depth)
        if key not in grouped:
            order.append(key)
            grouped[key] = {
                "group": key,
                "parallel_s": 0.0,
                "phases": 0,
                "bytes": 0,
                "categories": set(),
            }
        entry = grouped[key]
        entry["parallel_s"] += phase.parallel_time
        entry["phases"] += 1
        entry["bytes"] += phase.num_bytes
        entry["categories"].add(phase.category)
    rows = []
    for key in order:
        entry = grouped[key]
        rows.append(
            {
                "group": entry["group"],
                "parallel_s": round(entry["parallel_s"], 6),
                "phases": entry["phases"],
                "bytes": entry["bytes"],
                "categories": "+".join(sorted(entry["categories"])),
            }
        )
    return rows


def summarize_rounds(metrics: RunMetrics) -> List[dict]:
    """Aggregate phases by their driver-round annotation.

    Returns one row per ``(round, rule)`` pair in execution order, with
    the per-category parallel times and bytes of that round.  Phases
    recorded outside any driver round (``round_index is None``) are
    collected into a trailing row labelled round ``None`` so the total
    always reconciles with :meth:`RunMetrics.total_time`.
    """
    order: List[tuple] = []
    grouped: Dict[tuple, dict] = {}
    for phase in metrics.phases:
        key = (phase.round_index, phase.rule)
        if key not in grouped:
            order.append(key)
            grouped[key] = {
                "round": phase.round_index,
                "rule": phase.rule,
                GENERATION: 0.0,
                COMPUTATION: 0.0,
                COMMUNICATION: 0.0,
                "parallel_s": 0.0,
                "phases": 0,
                "bytes": 0,
            }
        entry = grouped[key]
        entry[phase.category] += phase.parallel_time
        entry["parallel_s"] += phase.parallel_time
        entry["phases"] += 1
        entry["bytes"] += phase.num_bytes
    # Annotated rounds first (execution order), unannotated overhead last.
    ordered = [k for k in order if k[0] is not None] + [k for k in order if k[0] is None]
    rows = []
    for key in ordered:
        entry = grouped[key]
        rows.append(
            {
                "round": entry["round"],
                "rule": entry["rule"],
                "generation_s": round(entry[GENERATION], 6),
                "computation_s": round(entry[COMPUTATION], 6),
                "communication_s": round(entry[COMMUNICATION], 6),
                "parallel_s": round(entry["parallel_s"], 6),
                "phases": entry["phases"],
                "bytes": entry["bytes"],
            }
        )
    return rows


def summarize_recovery(metrics: RunMetrics) -> List[dict]:
    """Aggregate the recovery log by ``(kind, machine)``.

    Returns one row per pair in first-occurrence order with the event
    count, total time lost, the rounds the incidents fired in and the
    last recorded detail — the table an experiment prints to show how a
    run degraded and recovered.  Empty list for a fault-free run.
    """
    order: List[tuple] = []
    grouped: Dict[tuple, dict] = {}
    for event in metrics.recovery_events:
        key = (event.kind, event.machine_id)
        if key not in grouped:
            order.append(key)
            grouped[key] = {
                "kind": event.kind,
                "machine": event.machine_id,
                "events": 0,
                "time_lost_s": 0.0,
                "rounds": [],
                "detail": "",
            }
        entry = grouped[key]
        entry["events"] += 1
        entry["time_lost_s"] += event.time_lost
        if event.round_index is not None and event.round_index not in entry["rounds"]:
            entry["rounds"].append(event.round_index)
        if event.detail:
            entry["detail"] = event.detail
    rows = []
    for key in order:
        entry = grouped[key]
        rows.append({**entry, "time_lost_s": round(entry["time_lost_s"], 6)})
    return rows


def render_timeline(
    metrics: RunMetrics, depth: int = 1, width: int = 50, category: str | None = None
) -> str:
    """A proportional text Gantt of the phase groups.

    Each group gets one line; bar length is proportional to its share of
    the total parallel time.  Groups contributing under half a character
    are shown with a single dot.  ``category`` restricts the timeline to
    one metrics category, as in :func:`summarize_phases`.
    """
    if width < 10:
        raise ValueError(f"width must be >= 10, got {width}")
    rows = summarize_phases(metrics, depth=depth, category=category)
    total = sum(row["parallel_s"] for row in rows)
    if total == 0:
        return "(empty timeline)"
    label_width = max(len(row["group"]) for row in rows)
    lines = []
    for row in rows:
        share = row["parallel_s"] / total
        bar_len = int(round(share * width))
        bar = "#" * bar_len if bar_len else "."
        lines.append(
            f"{row['group'].ljust(label_width)}  {bar.ljust(width)} "
            f"{row['parallel_s']:.4f}s ({share:5.1%})"
        )
    lines.append(f"{'total'.ljust(label_width)}  {'':{width}} {total:.4f}s")
    return "\n".join(lines)
