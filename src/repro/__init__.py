"""repro — reproduction of "Distributed Influence Maximization for
Large-Scale Online Social Networks" (Tang, Tang, Zhu, Han; ICDE 2022).

The library implements the paper's two building blocks and everything they
stand on:

* **Distributed reverse influence sampling** — RR-set samplers for the IC
  and LT models (plus SUBSIM subset sampling), generated independently per
  simulated machine (:mod:`repro.ris`, :mod:`repro.cluster`).
* **NEWGREEDI** — element-distributed maximum coverage with the exact
  ``(1 - 1/e)`` guarantee (:mod:`repro.coverage`).
* **DIIMM** — the IMM framework on top of both, returning
  ``(1 - 1/e - eps)``-approximate seed sets (:mod:`repro.core`), plus
  distributed SUBSIM and OPIM-C variants.

Quickstart::

    import numpy as np
    from repro import RunConfig, run, load_dataset, evaluate_seeds

    dataset = load_dataset("facebook")
    result = run("diimm", RunConfig(graph=dataset.graph, k=50, machines=16, eps=0.5))
    spread = evaluate_seeds(
        dataset.graph, result.seeds, "ic", 1000, np.random.default_rng(0)
    )
    print(result.seeds[:5], spread.mean)

:func:`repro.api.run` with a :class:`~repro.core.config.RunConfig` is the
primary entry point; the per-algorithm functions (``imm``, ``diimm``, ...)
remain as keyword shims over the same implementations.
"""

from .analysis import approximation_ratio_exact, evaluate_seeds
from .api import ALGORITHMS, POOLABLE, run
from .applications import (
    budgeted_influence_maximization,
    profit_maximization,
    seed_minimization,
    targeted_influence_maximization,
)
from .baselines import celf_greedy, degree_discount, max_degree, pagerank_seeds
from .cluster import (
    ExecutorSpec,
    FaultPlan,
    MultiprocessingSpec,
    NetworkModel,
    RetryPolicy,
    SimulatedCluster,
    SimulatedSpec,
    SocketSpec,
    gigabit_cluster,
    shared_memory_server,
)
from .core import (
    ImmParameters,
    IMResult,
    RunConfig,
    diimm,
    distributed_opimc,
    distributed_subsim,
    imm,
)
from .coverage import (
    CoverageInstance,
    greedi,
    greedy_max_coverage,
    newgreedi,
    randgreedi,
)
from .diffusion import (
    IndependentCascade,
    LinearThreshold,
    estimate_spread,
    get_model,
)
from .graphs import (
    DATASET_NAMES,
    DirectedGraph,
    GraphBuilder,
    load_dataset,
    read_edge_list,
    weighted_cascade,
)
from .ris import FlatRRCollection, RRCollection, make_sampler

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # api
    "run",
    "RunConfig",
    "ALGORITHMS",
    "POOLABLE",
    # graphs
    "DirectedGraph",
    "GraphBuilder",
    "load_dataset",
    "DATASET_NAMES",
    "read_edge_list",
    "weighted_cascade",
    # diffusion
    "IndependentCascade",
    "LinearThreshold",
    "get_model",
    "estimate_spread",
    # ris
    "make_sampler",
    "RRCollection",
    "FlatRRCollection",
    # cluster
    "SimulatedCluster",
    "NetworkModel",
    "gigabit_cluster",
    "shared_memory_server",
    "FaultPlan",
    "RetryPolicy",
    "ExecutorSpec",
    "SimulatedSpec",
    "MultiprocessingSpec",
    "SocketSpec",
    # coverage
    "CoverageInstance",
    "greedy_max_coverage",
    "newgreedi",
    "greedi",
    "randgreedi",
    # core
    "imm",
    "diimm",
    "distributed_subsim",
    "distributed_opimc",
    "ImmParameters",
    "IMResult",
    # analysis
    "evaluate_seeds",
    "approximation_ratio_exact",
    # applications
    "targeted_influence_maximization",
    "budgeted_influence_maximization",
    "seed_minimization",
    "profit_maximization",
    # baselines
    "max_degree",
    "degree_discount",
    "pagerank_seeds",
    "celf_greedy",
]
