"""The warm influence service: query lifetime split from sample lifetime.

``repro.serve`` keeps the expensive state of a run — the shared-memory
graph, the executor's worker pool, and the per-machine RR collections —
resident in :class:`~repro.core.pool.SamplePool` objects owned by an
:class:`InfluenceService`, and answers seed-selection queries (varying
``k``, accuracy, algorithm, and application variants) against *prefixes*
of the same samples.  A warm query returns the bit-identical seed set
the cold :func:`repro.api.run` produces, at a fraction of the latency
(``benchmarks/bench_serving.py`` holds the speedup floor).

:class:`ServingFrontend` exposes the service over an asyncio JSON-lines
TCP socket; ``python -m repro serve`` starts one from the CLI.
"""

from .service import QUERY_KINDS, InfluenceService, Query, default_costs
from .frontend import ServingFrontend, request

__all__ = [
    "QUERY_KINDS",
    "InfluenceService",
    "Query",
    "ServingFrontend",
    "default_costs",
    "request",
]
