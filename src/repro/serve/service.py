"""The warm influence service over shared sample pools.

An :class:`InfluenceService` owns one :class:`~repro.core.pool.SamplePool`
per distinct sampling stream it has needed so far — the distributed
cluster-seeded pool serving DIIMM / D-SUBSIM and the fixed-budget
applications, the single-machine legacy pool serving the IMM baseline,
and one targeted pool per distinct target set — and routes each query to
the right pool:

* **IMM-family queries** (``imm``, ``diimm``, ``dsubsim``) run the normal
  :class:`~repro.core.driver.RoundDriver` schedule against prefix views
  of the pool's collections, topping the pool up only when the query's
  accuracy parameters push theta past what previous queries generated.
* **Application queries** (``budgeted``, ``profit``, ``targeted``) are
  fixed-budget: the service tops the pool up to the per-machine shares of
  ``num_rr_sets`` and hands the application prefix views in place of
  generation.

Either way the answer is bit-identical to the cold entry point with the
same parameters — the correctness anchor ``tests/serve`` pins.

Results are memoized in an LRU cache keyed by ``(query fingerprint,
pool signature)``; the signature carries both the pool's collection
sizes and its update epoch, so repeated queries that neither grow nor
repair the pool are answered without touching the cluster at all.

Dynamic serving
---------------
A service started with ``dynamic=True`` wraps its graph in a
:class:`~repro.graphs.digraph.VersionedGraph` and builds every pool on
the ``"per-set"`` RNG scheme, which is what makes resident RR sets
individually regenerable.  :meth:`InfluenceService.apply_update` lands a
:class:`~repro.graphs.digraph.GraphDelta` on the shared graph, repairs
every resident pool in place (:meth:`SamplePool.repair
<repro.core.pool.SamplePool.repair>`), bumps :attr:`graph_version`, and
evicts exactly the cache entries of pools whose collections were
rewritten — untouched pools keep serving their memoized results.
Answers after an update are bit-identical to a fresh dynamic service
started on the already-updated graph.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from contextlib import ExitStack
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from ..applications.budgeted import budgeted_influence_maximization
from ..applications.profit import profit_maximization
from ..applications.targeted import TargetedSampler, targeted_influence_maximization
from ..cluster.executor import fold_legacy_executor_kwargs
from ..cluster.network import NetworkModel
from ..cluster.spec import as_spec
from ..core.config import RunConfig
from ..core.diimm import diimm_from_config
from ..core.dsubsim import distributed_subsim_from_config
from ..core.imm import imm_from_config
from ..core.pool import SamplePool
from ..graphs.digraph import DirectedGraph, GraphDelta, VersionedGraph
from ..ris import make_sampler
from ..ris.flat import FlatPrefixView

__all__ = ["QUERY_KINDS", "InfluenceService", "Query", "default_costs"]

#: Query kinds the service answers.
QUERY_KINDS: Tuple[str, ...] = (
    "imm",
    "diimm",
    "dsubsim",
    "budgeted",
    "profit",
    "targeted",
)

_IM_KINDS = ("imm", "diimm", "dsubsim")
_APP_KINDS = ("budgeted", "profit", "targeted")


def default_costs(graph: DirectedGraph) -> np.ndarray:
    """The CLI's degree-scaled seeding costs: ``1 + 9 * outdeg/max``."""
    degrees = graph.out_degrees()
    return 1.0 + degrees / max(int(degrees.max()), 1) * 9.0


@dataclass(frozen=True)
class Query:
    """One seed-selection request.

    ``kind`` selects the algorithm (:data:`QUERY_KINDS`); the remaining
    fields apply per kind — ``k``/``eps``/``delta`` to the IMM family and
    ``targeted``, ``num_rr_sets``/``budget``/``costs``/``targets`` to the
    fixed-budget applications (``costs=None`` uses
    :func:`default_costs`).
    """

    kind: str
    k: int = 10
    eps: float = 0.5
    delta: Optional[float] = None
    num_rr_sets: int = 10000
    budget: Optional[float] = None
    costs: Optional[Tuple[float, ...]] = None
    targets: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if self.kind not in QUERY_KINDS:
            raise ValueError(
                f"kind must be one of {QUERY_KINDS}, got {self.kind!r}"
            )
        if self.costs is not None:
            object.__setattr__(
                self, "costs", tuple(float(c) for c in self.costs)
            )
        if self.targets is not None:
            object.__setattr__(
                self, "targets", tuple(sorted(int(t) for t in set(self.targets)))
            )
        if self.kind == "targeted" and not self.targets:
            raise ValueError("targeted queries need a non-empty target set")
        if self.kind == "budgeted" and (self.budget is None or self.budget <= 0):
            raise ValueError("budgeted queries need a positive budget")

    def fingerprint(self) -> Tuple:
        """A hashable identity for the result cache."""
        return (
            self.kind,
            self.k,
            self.eps,
            self.delta,
            self.num_rr_sets,
            self.budget,
            self.costs,
            self.targets,
        )


@dataclass
class ServiceStats:
    """Counters the service exposes over ``stats`` requests."""

    queries: int = 0
    cache_hits: int = 0
    by_kind: Dict[str, int] = field(default_factory=dict)

    def record(self, kind: str, hit: bool) -> None:
        self.queries += 1
        if hit:
            self.cache_hits += 1
        self.by_kind[kind] = self.by_kind.get(kind, 0) + 1


class InfluenceService:
    """A long-lived, warm seed-selection service over shared sample pools.

    Parameters
    ----------
    graph:
        The loaded graph; resident for the service's lifetime.
    machines:
        Cluster width for the distributed pools (the IMM baseline pool is
        always single-machine).
    seed:
        Root RNG seed; every warm answer equals the cold run with this
        seed.
    model, method:
        Default sampler selection.  ``method`` applies to the IMM-family
        pools; the applications always sample with the default per-set
        sampler (``bfs``), matching their cold entry points.
    executor:
        An :class:`~repro.cluster.spec.ExecutorSpec` or its string
        shorthand, forwarded to each pool's executor.
    network:
        Master<->slave cost model, forwarded to each pool.
    processes, start_method, zero_copy:
        Deprecated — pass the matching :class:`ExecutorSpec` option
        instead; each warns before being folded into the spec.
    cache_size:
        Maximum memoized query results (LRU).
    dynamic:
        Serve a mutable graph: wraps ``graph`` in a
        :class:`~repro.graphs.digraph.VersionedGraph` and builds every
        pool on the ``"per-set"`` RNG scheme so :meth:`apply_update`
        can repair resident RR sets in place.  Static services (the
        default) keep the historical per-machine stream schemes and
        refuse updates.
    """

    def __init__(
        self,
        graph: DirectedGraph,
        machines: int = 4,
        *,
        seed: int = 0,
        model: str = "ic",
        method: str = "bfs",
        executor="simulated",
        processes: int | None = None,
        network: NetworkModel | None = None,
        start_method: str | None = None,
        zero_copy: bool | None = None,
        cache_size: int = 128,
        dynamic: bool = False,
    ) -> None:
        if dynamic and not isinstance(graph, VersionedGraph):
            graph = VersionedGraph(graph)
        self.graph = graph
        self.machines = machines
        self.seed = seed
        self.model = model
        self.method = method
        self.dynamic = dynamic
        #: Number of graph mutations served so far: bumped by every
        #: :meth:`apply_update` and :meth:`compact`, exposed over
        #: ``stats`` and in update replies.
        self.graph_version = 0
        self._executor_kwargs = dict(
            executor=fold_legacy_executor_kwargs(
                as_spec(executor),
                processes=processes,
                start_method=start_method,
                zero_copy=zero_copy,
                owner="InfluenceService",
            ),
            network=network,
        )
        self._pools: Dict[Tuple, SamplePool] = {}
        self._cache: "OrderedDict[Tuple, object]" = OrderedDict()
        self._cache_size = cache_size
        self._lock = threading.Lock()
        self.stats = ServiceStats()
        self._closed = False

    # ------------------------------------------------------------------
    # Pool registry
    # ------------------------------------------------------------------
    def _pool(self, key: Tuple, **kwargs) -> SamplePool:
        with self._lock:
            if self._closed:
                raise RuntimeError("service is closed")
            pool = self._pools.get(key)
            if pool is None:
                pool = SamplePool(
                    self.graph, seed=self.seed, **self._executor_kwargs, **kwargs
                )
                self._pools[key] = pool
            return pool

    def _im_pool(self, kind: str) -> SamplePool:
        if kind == "imm":
            return self._pool(
                ("legacy", self.method),
                machines=1,
                model=self.model,
                method=self.method,
                rng_scheme="per-set" if self.dynamic else "legacy-imm",
            )
        method = "subsim" if kind == "dsubsim" else self.method
        return self._pool(
            ("cluster", method),
            machines=self.machines,
            model="ic" if kind == "dsubsim" else self.model,
            method=method,
            rng_scheme="per-set" if self.dynamic else "cluster",
        )

    def _app_pool(self, query: Query) -> SamplePool:
        if query.kind == "targeted":
            # One pool per distinct target set: the targeted sampler's
            # stream draws roots from the targets, so different target
            # sets are different streams.  Dynamic services pass a
            # factory instead of an instance so repair can rebuild the
            # sampler against the mutated graph.
            targets = list(query.targets)
            model = self.model
            if self.dynamic:
                kwargs = dict(
                    rng_scheme="per-set",
                    sampler_factory=lambda graph: TargetedSampler(
                        make_sampler(graph, model=model), targets
                    ),
                )
            else:
                kwargs = dict(
                    sampler=TargetedSampler(
                        make_sampler(self.graph, model=model), targets
                    )
                )
            return self._pool(
                ("targeted", query.targets),
                machines=self.machines,
                model=self.model,
                method="bfs",
                **kwargs,
            )
        # budgeted/profit share the cluster bfs pool's samples: their cold
        # entry points draw with the default per-set sampler on an
        # identically seeded cluster, so the pool's stream prefixes are
        # their cold collections.
        return self._pool(
            ("cluster", "bfs"),
            machines=self.machines,
            model=self.model,
            method="bfs",
            rng_scheme="per-set" if self.dynamic else "cluster",
        )

    # ------------------------------------------------------------------
    # Query dispatch
    # ------------------------------------------------------------------
    def query(self, query: Query):
        """Answer ``query`` warm, memoizing by pool state.

        Returns the same result object the cold entry point returns — an
        :class:`~repro.core.result.IMResult` for the IMM family, an
        :class:`~repro.applications.result.ApplicationResult` for the
        applications.
        """
        pool = (
            self._im_pool(query.kind)
            if query.kind in _IM_KINDS
            else self._app_pool(query)
        )
        # The signature covers collection sizes and the pool's update
        # epoch, so entries from before an in-place repair miss here.
        cache_key = (query.fingerprint(), pool.signature())
        with self._lock:
            cached = self._cache.get(cache_key)
            if cached is not None:
                self._cache.move_to_end(cache_key)
                self.stats.record(query.kind, hit=True)
                return cached[1]
        if query.kind in _IM_KINDS:
            result = self._run_im(query, pool)
        else:
            result = self._run_app(query, pool)
        with self._lock:
            self.stats.record(query.kind, hit=False)
            # Values remember which pool produced them, so apply_update
            # can evict exactly the repaired pools' entries.
            poolkey = next(
                (key for key, p in self._pools.items() if p is pool), None
            )
            # Key on the pool state *after* the query: identical repeats
            # top up nothing, so they hit this entry.
            after_key = (query.fingerprint(), pool.signature())
            self._cache[after_key] = (poolkey, result)
            self._cache.move_to_end(after_key)
            while len(self._cache) > self._cache_size:
                self._cache.popitem(last=False)
        return result

    def _run_im(self, query: Query, pool: SamplePool):
        config = RunConfig(
            graph=self.graph,
            k=query.k,
            machines=1 if query.kind == "imm" else self.machines,
            eps=query.eps,
            delta=query.delta,
            model=pool.model,
            method=pool.method,
            seed=self.seed,
        )
        entry = {
            "imm": imm_from_config,
            "diimm": diimm_from_config,
            "dsubsim": distributed_subsim_from_config,
        }[query.kind]
        return entry(config, pool=pool)

    def _run_app(self, query: Query, pool: SamplePool):
        shares = pool.cluster.split_count(query.num_rr_sets)
        with pool.query_metrics():
            pool.ensure("main", shares, label=f"serve/{query.kind}/ensure")
            views = [
                FlatPrefixView(store, share)
                for store, share in zip(pool.stores("main"), shares)
            ]
            common = dict(
                num_machines=pool.num_machines,
                num_rr_sets=query.num_rr_sets,
                model=self.model,
                seed=self.seed,
                cluster=pool.cluster,
                collections=views,
            )
            if query.kind == "budgeted":
                costs = query.costs if query.costs is not None else default_costs(self.graph)
                return budgeted_influence_maximization(
                    self.graph, costs, query.budget, **common
                )
            if query.kind == "profit":
                costs = query.costs if query.costs is not None else default_costs(self.graph)
                return profit_maximization(self.graph, costs, **common)
            return targeted_influence_maximization(
                self.graph, list(query.targets), query.k, **common
            )

    # ------------------------------------------------------------------
    # Dynamic graph updates
    # ------------------------------------------------------------------
    def apply_update(self, delta: GraphDelta) -> Dict:
        """Land ``delta`` on the served graph and repair every pool.

        Requires ``dynamic=True``.  Takes every resident pool's lock (in
        a fixed order, after in-flight queries drain), applies the delta
        to the shared :class:`~repro.graphs.digraph.VersionedGraph`
        once, repairs each pool's collections in place, evicts the cache
        entries of pools whose contents were rewritten, and bumps
        :attr:`graph_version`.  Returns a JSON-safe summary: the new
        graph version, how many RR sets each pool regenerated, and how
        many cache entries were evicted.
        """
        if not self.dynamic:
            raise RuntimeError(
                "this service is static; start it with dynamic=True to "
                "accept graph updates"
            )
        with self._lock:
            if self._closed:
                raise RuntimeError("service is closed")
            pools = dict(self._pools)
        with ExitStack() as stack:
            for key in sorted(pools, key=repr):
                stack.enter_context(pools[key].lock)
            touched = self.graph.apply(delta)
            repaired = {
                key: pool.repair(touched) for key, pool in pools.items()
            }
            rewritten = {
                key for key, counts in repaired.items() if any(counts.values())
            }
            with self._lock:
                evicted = [
                    cache_key
                    for cache_key, (poolkey, _) in self._cache.items()
                    if poolkey in rewritten
                ]
                for cache_key in evicted:
                    del self._cache[cache_key]
                self.graph_version += 1
                version = self.graph_version
        return {
            "graph_version": version,
            "num_changes": delta.num_changes,
            "repaired": {
                repr(key): sum(counts.values()) for key, counts in repaired.items()
            },
            "evicted": len(evicted),
        }

    def compact(self) -> Dict:
        """Fold the overlay into a fresh base CSR and refresh every pool.

        Rebasing preserves every in-row element-for-element, so resident
        collections — and cached results — stay valid; only the pools'
        traversal tables and worker broadcasts are rebuilt.
        """
        if not self.dynamic:
            raise RuntimeError("this service is static; nothing to compact")
        with self._lock:
            if self._closed:
                raise RuntimeError("service is closed")
            pools = dict(self._pools)
        with ExitStack() as stack:
            for key in sorted(pools, key=repr):
                stack.enter_context(pools[key].lock)
            self.graph.rebase()
            for pool in pools.values():
                pool.executor.refresh_graph()
            with self._lock:
                self.graph_version += 1
                version = self.graph_version
        return {"graph_version": version, "num_edges": self.graph.num_edges}

    # ------------------------------------------------------------------
    # Introspection and lifecycle
    # ------------------------------------------------------------------
    def pool_sizes(self) -> Dict[str, Dict[str, list]]:
        """Per-pool, per-key collection sizes (stringified pool keys)."""
        with self._lock:
            pools = dict(self._pools)
        return {repr(key): pool.sizes() for key, pool in pools.items()}

    def describe(self) -> Dict:
        """The ``stats`` payload: counters, pools, and cache occupancy."""
        with self._lock:
            return {
                "queries": self.stats.queries,
                "cache_hits": self.stats.cache_hits,
                "by_kind": dict(self.stats.by_kind),
                "cache_entries": len(self._cache),
                "num_pools": len(self._pools),
                "machines": self.machines,
                "dynamic": self.dynamic,
                "graph_version": self.graph_version,
            }

    def close(self) -> None:
        """Release every pool (worker processes, shared memory). Idempotent."""
        with self._lock:
            self._closed = True
            pools = list(self._pools.values())
            self._pools.clear()
            self._cache.clear()
        for pool in pools:
            pool.close()

    def __enter__(self) -> "InfluenceService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"InfluenceService(machines={self.machines}, seed={self.seed}, "
            f"pools={len(self._pools)}, queries={self.stats.queries})"
        )
