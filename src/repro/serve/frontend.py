"""Asyncio JSON-lines front-end for the influence service.

One request per line, one JSON reply per line:

* ``{"op": "query", "kind": "diimm", "k": 20, ...}`` — any
  :class:`~repro.serve.service.Query` field; replies with the seed set,
  objective, and timing breakdown.
* ``{"op": "stats"}`` — service counters and pool sizes.
* ``{"op": "update", "add_edges": [[u, v, p], ...], "remove_edges":
  [[u, v], ...], ...}`` — any :meth:`GraphDelta.from_json
  <repro.graphs.digraph.GraphDelta.from_json>` field; lands the delta on
  a ``dynamic=True`` service's graph, repairs the resident pools in
  place, and replies with the new graph version and repair counts.
* ``{"op": "compact"}`` — fold the dynamic graph's overlay into a fresh
  base CSR.
* ``{"op": "ping"}`` — liveness check.

Queries run in worker threads (``asyncio.to_thread``), so slow cold
queries never stall the event loop; queries hitting the *same* pool
serialize on the pool lock while queries against different pools (and
cache hits) proceed concurrently.  Malformed requests get an
``{"ok": false, "error": ...}`` reply instead of killing the connection.

:func:`request` is the matching synchronous one-shot client used by the
CLI, the tests, and the serving benchmark.
"""

from __future__ import annotations

import asyncio
import json
import socket
from typing import Dict

from ..applications.result import ApplicationResult
from ..core.result import IMResult
from ..graphs.digraph import GraphDelta
from .service import InfluenceService, Query

__all__ = ["ServingFrontend", "request", "result_payload"]


def result_payload(result) -> Dict:
    """Flatten an algorithm or application result into a JSON-safe dict."""
    if isinstance(result, IMResult):
        return {
            "seeds": [int(s) for s in result.seeds],
            "objective": float(result.estimated_spread),
            "num_rr_sets": int(result.num_rr_sets),
            "algorithm": result.algorithm,
            "breakdown": {k: float(v) for k, v in result.metrics.breakdown().items()},
            "params": _jsonable(result.params),
        }
    if isinstance(result, ApplicationResult):
        return {
            "seeds": [int(s) for s in result.seeds],
            "objective": float(result.objective),
            "num_rr_sets": int(result.num_rr_sets),
            "algorithm": result.application,
            "breakdown": {k: float(v) for k, v in result.breakdown.items()},
            "params": _jsonable(result.params),
        }
    raise TypeError(f"cannot serialize result of type {type(result).__name__}")


def _jsonable(params: Dict) -> Dict:
    out = {}
    for key, value in params.items():
        if hasattr(value, "item"):  # numpy scalar
            value = value.item()
        out[str(key)] = value
    return out


class ServingFrontend:
    """A TCP JSON-lines server wrapping an :class:`InfluenceService`."""

    def __init__(
        self, service: InfluenceService, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None

    async def start(self) -> None:
        """Bind and start accepting connections (``port=0`` picks a free
        port, readable from :attr:`port` afterwards)."""
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                reply = await self._dispatch(line)
                writer.write(json.dumps(reply).encode() + b"\n")
                await writer.drain()
        finally:
            # Fire-and-forget close: awaiting wait_closed() here would
            # raise if the server is being cancelled mid-handler.
            writer.close()

    async def _dispatch(self, line: bytes) -> Dict:
        try:
            req = json.loads(line)
            if not isinstance(req, dict):
                raise ValueError("request must be a JSON object")
            op = req.pop("op", "query")
            if op == "ping":
                return {"ok": True, "op": "ping"}
            if op == "stats":
                payload = self.service.describe()
                payload["pools"] = self.service.pool_sizes()
                return {"ok": True, "op": "stats", **payload}
            if op == "query":
                query = Query(
                    kind=req.pop("kind"),
                    **{
                        k: (tuple(v) if isinstance(v, list) else v)
                        for k, v in req.items()
                    },
                )
                result = await asyncio.to_thread(self.service.query, query)
                return {"ok": True, "op": "query", **result_payload(result)}
            if op == "update":
                delta = GraphDelta.from_json(req)
                summary = await asyncio.to_thread(self.service.apply_update, delta)
                return {"ok": True, "op": "update", **summary}
            if op == "compact":
                summary = await asyncio.to_thread(self.service.compact)
                return {"ok": True, "op": "compact", **summary}
            raise ValueError(f"unknown op {op!r}")
        except Exception as exc:  # noqa: BLE001 — every error becomes a reply
            return {"ok": False, "error": f"{type(exc).__name__}: {exc}"}


def request(port: int, payload: Dict, host: str = "127.0.0.1", timeout: float = 600.0) -> Dict:
    """Synchronous one-shot client: send one request line, read the reply."""
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall(json.dumps(payload).encode() + b"\n")
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
            if chunk.endswith(b"\n"):
                break
    return json.loads(b"".join(chunks))
