"""Vectorized coverage kernel over CSR RR-set stores (the flat backend).

The greedy hot path — marking the elements newly covered by a chosen seed
and decrementing every member node's marginal — is what dominates seed
selection in every figure of the paper.  The reference implementation
walks Python lists per element; this kernel performs the same updates
with NumPy fancy indexing over a :class:`~repro.ris.flat.FlatRRCollection`'s
flat arrays:

* ``sets_containing(u)`` is a CSR slice instead of a dict lookup;
* the union of the newly covered sets' contents is one multi-row gather
  (:func:`~repro.ris.flat.gather_rows`);
* the marginal decrements are one ``np.bincount`` subtraction
  (:func:`mark_and_decrement`) or one ``np.unique`` with counts
  (:func:`sparse_decrements`, NEWGREEDI's map-stage ``Delta_i``).

Both functions perform *exactly* the updates of the reference loops — the
counts array evolves identically element-for-element, so the bucket-queue
selection (largest marginal, lowest id on ties) is byte-for-byte
unchanged.  ``tests/coverage/test_kernel_differential.py`` holds the two
backends to that equivalence.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..ris.flat import FlatPrefixView, FlatRRCollection, gather_rows

__all__ = [
    "BACKENDS",
    "as_flat",
    "resolve_backend",
    "mark_and_decrement",
    "sparse_decrements",
    "sparse_coverage_delta",
    "apply_sparse_delta",
    "candidate_degrees",
]

#: Supported coverage backends.
BACKENDS = ("flat", "reference")


def _require_int64_counts(counts: np.ndarray) -> None:
    """Reject narrow marginal-count buffers before they can wrap silently.

    The in-place decrements below (``counts -= bincount(...)``) accept an
    ``int32`` buffer under NumPy's same-kind casting and would overflow
    without a warning once a machine holds >= 2**31 incidences — a scale
    the batched generators reach long before memory runs out.  All repo
    call sites allocate ``int64``; this guard keeps external callers to
    the same contract.
    """
    counts = np.asarray(counts)
    if counts.dtype != np.int64:
        raise TypeError(
            "counts must be an int64 array (narrower dtypes overflow "
            f"silently under large collections), got {counts.dtype}"
        )


def resolve_backend(backend: str) -> str:
    """Validate a ``backend=`` argument, returning it normalised."""
    if backend not in BACKENDS:
        raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
    return backend


def as_flat(store):
    """Return ``store`` with the flat CSR surface (no-op when already flat).

    A :class:`~repro.ris.flat.FlatPrefixView` — the warm pool's per-query
    window onto a shared collection — already exposes the raw arrays the
    kernel reads and passes through untouched; anything else is copied
    into a fresh :class:`FlatRRCollection`.
    """
    if isinstance(store, (FlatRRCollection, FlatPrefixView)):
        return store
    return FlatRRCollection.from_store(store)


def mark_and_decrement(
    store: FlatRRCollection,
    seed: int,
    covered: np.ndarray,
    counts: np.ndarray,
) -> int:
    """Mark ``seed``'s uncovered elements covered; decrement their members.

    The vectorized form of the centralized greedy's inner loop: gathers
    the contents of every newly covered element in one fancy-indexed
    slice and applies all marginal decrements as a single bincount
    subtraction.  Returns the number of newly covered elements (the
    seed's realised marginal).  ``covered`` and ``counts`` are updated in
    place, exactly as the reference loop updates them.
    """
    _require_int64_counts(counts)
    elements = store.sets_containing(seed)
    if elements.size == 0:
        return 0
    fresh = elements[~covered[elements]]
    if fresh.size == 0:
        return 0
    covered[fresh] = True
    members = gather_rows(store.nodes, store.offsets, fresh)
    if members.size:
        counts -= np.bincount(members, minlength=counts.size)
    return int(fresh.size)


def sparse_decrements(
    store: FlatRRCollection,
    seed: int,
    covered: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, int]:
    """NEWGREEDI map stage: the sparse ``Delta_i`` response for one seed.

    Marks the machine's newly covered elements in place and returns
    ``(nodes, decrements, newly_covered)`` — the exact multiset the
    reference dict accumulates, as parallel arrays ready to ship.  The
    response length (and hence the charged tuple bytes) equals the
    reference ``len(Delta_i)``.
    """
    elements = store.sets_containing(seed)
    empty = np.zeros(0, dtype=np.int64)
    if elements.size == 0:
        return empty, empty, 0
    fresh = elements[~covered[elements]]
    if fresh.size == 0:
        return empty, empty, 0
    covered[fresh] = True
    members = gather_rows(store.nodes, store.offsets, fresh)
    nodes, decrements = np.unique(members, return_counts=True)
    return nodes.astype(np.int64, copy=False), decrements, int(fresh.size)


def sparse_coverage_delta(store, start: int = 0) -> Tuple[np.ndarray, np.ndarray]:
    """One generation wave's sparse ``(node, count)`` coverage delta.

    Counts how many RR sets with index ``>= start`` contain each node and
    returns only the nonzero entries as parallel ``(nodes, counts)``
    arrays — the exact tuple vector a machine ships to the master after a
    wave (Section III-C's traffic optimisation), and the increment a
    :class:`~repro.coverage.state.CoverageState` applies instead of
    re-aggregating the whole collection.  Works on any store exposing
    ``coverage_counts(start=...)``.
    """
    counts = store.coverage_counts(start=start)
    nodes = np.nonzero(counts)[0].astype(np.int64, copy=False)
    return nodes, counts[nodes]


def apply_sparse_delta(
    counts: np.ndarray, nodes: np.ndarray, deltas: np.ndarray, sign: int = 1
) -> None:
    """Apply a sparse ``(node, delta)`` vector to a counts array in place.

    ``sign=+1`` ingests a wave's new coverage (counts grow); ``sign=-1``
    applies a selection round's decrements.  This is the single reduce
    primitive behind both the wave ingestion and NEWGREEDI's master-side
    reduce, so the two paths cannot drift apart.
    """
    if sign not in (1, -1):
        raise ValueError(f"sign must be +1 or -1, got {sign}")
    _require_int64_counts(counts)
    if nodes.size:
        if sign == 1:
            counts[nodes] += deltas
        else:
            counts[nodes] -= deltas


def candidate_degrees(store: FlatRRCollection, candidates: np.ndarray) -> np.ndarray:
    """``|I(v)|`` for each candidate set id — one CSR offset difference."""
    candidates = np.asarray(candidates, dtype=np.int64)
    inv_offsets = store.inv_offsets
    return inv_offsets[candidates + 1] - inv_offsets[candidates]
