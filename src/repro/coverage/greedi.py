"""GREEDI: the set-distributed composable core-sets baseline (Fig 10).

GREEDI (Mirzasoleiman et al., NeurIPS 2013) partitions the *sets* across
machines.  Each machine greedily picks ``kappa`` sets from its partition;
the master merges the ``l * kappa`` candidates — shipping their full
element-incidence lists — and greedily picks the final ``k`` from the
union.  With ``kappa = k`` the guarantee degrades to
``(1 - 1/e)^2 / min(l, k)``, and empirically its coverage drops as the
machine count grows (paper Fig 10(c)), because each partition sees only a
fragment of every set's context.

The paper's point, reproduced here, is the contrast: NEWGREEDI keeps the
*elements* distributed (compatible with distributed RIS), pays only sparse
tuple traffic, and still returns the exact centralized greedy solution.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..cluster.cluster import SimulatedCluster
from ..cluster.machine import Machine
from ..cluster.metrics import COMPUTATION
from .greedy import BucketQueue, GreedyResult, _pad_with_unselected
from .kernel import as_flat, candidate_degrees, mark_and_decrement, resolve_backend
from .problem import CoverageInstance

__all__ = ["greedi", "randgreedi", "partition_sets"]

#: Bytes per element id inside a shipped candidate incidence list.
ELEMENT_ID_BYTES = 4
#: Bytes per shipped candidate set id.
SET_ID_BYTES = 4


def partition_sets(
    num_universe_sets: int,
    num_machines: int,
    rng: np.random.Generator | None = None,
) -> List[np.ndarray]:
    """Split set ids into ``num_machines`` equal partitions.

    Round-robin when ``rng`` is omitted (deterministic GREEDI); a uniform
    random shuffle otherwise (RANDGREEDI's randomized core-sets).
    """
    ids = np.arange(num_universe_sets)
    if rng is not None:
        rng.shuffle(ids)
    return [ids[i::num_machines] for i in range(num_machines)]


def _restricted_greedy(
    instance,
    candidates: Sequence[int],
    k: int,
    backend: str = "flat",
) -> List[int]:
    """Lazy greedy allowed to pick only from ``candidates``.

    Shares the bucket-queue engine (and its lowest-id tie-breaking) with
    the centralized greedy so every comparison in the experiments isolates
    the *distribution strategy*, not incidental implementation choices.
    With ``backend="flat"`` the caller passes a pre-converted
    :class:`~repro.ris.flat.FlatRRCollection` and the decrement loop runs
    through the vectorized kernel; results are identical either way.
    """
    counts = np.zeros(instance.num_nodes, dtype=np.int64)
    candidate_list = [int(c) for c in candidates]
    if backend == "flat":
        cand = np.asarray(candidate_list, dtype=np.int64)
        if cand.size:
            counts[cand] = candidate_degrees(instance, cand)
    else:
        for set_id in candidate_list:
            counts[set_id] = len(instance.sets_containing(set_id))
    queue = BucketQueue(counts, candidates=candidate_list)
    covered = np.zeros(instance.num_sets, dtype=bool)
    selected: List[int] = []
    while len(selected) < k:
        set_id = queue.pop_max()
        if set_id is None:
            break
        if backend == "flat":
            mark_and_decrement(instance, set_id, covered, counts)
        else:
            for element in instance.sets_containing(set_id):
                if covered[element]:
                    continue
                covered[element] = True
                counts[instance.get(element)] -= 1
        selected.append(set_id)
    return selected


def greedi(
    cluster: SimulatedCluster,
    instance: CoverageInstance,
    k: int,
    kappa: int | None = None,
    rng: np.random.Generator | None = None,
    label: str = "greedi",
    backend: str = "flat",
) -> GreedyResult:
    """Run GREEDI on the cluster; returns the merged size-``k`` solution.

    Parameters
    ----------
    cluster:
        Simulated cluster (timing recorded into ``cluster.metrics``).
    instance:
        The *global* coverage instance; set-distributed partitioning is
        performed here, in GREEDI's favour (paper Section IV-A: each
        scheme starts from the data layout that suits it).
    k:
        Final solution size.
    kappa:
        Per-machine core-set size; the paper sets ``kappa = k``.
    rng:
        Optional generator for a random partition (RANDGREEDI).
    backend:
        ``"flat"`` (default) converts the instance to CSR arrays once and
        runs every per-partition greedy through the vectorized kernel;
        ``"reference"`` keeps the per-element loops.  Identical output.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    resolve_backend(backend)
    kappa = k if kappa is None else kappa
    partitions = partition_sets(instance.num_nodes, cluster.num_machines, rng)
    store = as_flat(instance) if backend == "flat" else instance

    def local_stage(machine: Machine) -> List[int]:
        return _restricted_greedy(
            store, partitions[machine.machine_id], kappa, backend=backend
        )

    local_solutions = cluster.map(COMPUTATION, f"{label}/local", local_stage)

    # Each machine ships its kappa candidates together with their full
    # incidence lists; the master cannot evaluate coverage without them.
    payload_sizes = []
    for solution in local_solutions:
        size = 0
        for set_id in solution:
            size += SET_ID_BYTES
            size += ELEMENT_ID_BYTES * len(store.sets_containing(set_id))
        payload_sizes.append(size)
    cluster.gather(f"{label}/candidates", payload_sizes)

    def merge_stage() -> GreedyResult:
        union: List[int] = sorted({s for sol in local_solutions for s in sol})
        seeds = _restricted_greedy(store, union, k, backend=backend)
        _pad_with_unselected(seeds, k, instance.num_nodes)
        return GreedyResult(
            seeds=seeds,
            coverage=store.coverage_of(seeds),
            num_elements=instance.num_sets,
        )

    return cluster.run_on_master(f"{label}/merge", merge_stage)


def randgreedi(
    cluster: SimulatedCluster,
    instance: CoverageInstance,
    k: int,
    rng: np.random.Generator,
    kappa: int | None = None,
    backend: str = "flat",
) -> GreedyResult:
    """RANDGREEDI (Barbosa et al., ICML 2015): GREEDI over a random partition.

    Randomizing the partition lifts the expected approximation to
    ``(1 - 1/e) / 2``; the protocol and traffic are GREEDI's.
    """
    return greedi(
        cluster, instance, k, kappa=kappa, rng=rng, label="randgreedi", backend=backend
    )
