"""Maximum coverage: problem abstraction, greedy engines, NEWGREEDI, GREEDI.

Every algorithm takes a ``backend`` switch: ``"flat"`` (default) runs the
vectorized CSR kernel of :mod:`repro.coverage.kernel`; ``"reference"``
keeps the dict/list-walking loops as the exactness oracle.
"""

from .greedi import greedi, partition_sets, randgreedi
from .greedy import (
    BucketQueue,
    GreedyResult,
    greedy_max_coverage,
    naive_greedy_max_coverage,
)
from .kernel import (
    BACKENDS,
    apply_sparse_delta,
    as_flat,
    mark_and_decrement,
    resolve_backend,
    sparse_coverage_delta,
    sparse_decrements,
)
from .newgreedi import NewGreeDiResult, gather_coverage_counts, newgreedi
from .problem import CoverageInstance
from .sketch import (
    SketchCoverageState,
    SketchRRCollection,
    estimate_bank_degrees,
    hll_estimate,
    hll_relative_error,
    sketch_lazy_greedy,
)
from .state import CoverageState

__all__ = [
    "CoverageInstance",
    "BucketQueue",
    "GreedyResult",
    "greedy_max_coverage",
    "naive_greedy_max_coverage",
    "NewGreeDiResult",
    "newgreedi",
    "gather_coverage_counts",
    "greedi",
    "randgreedi",
    "partition_sets",
    "BACKENDS",
    "as_flat",
    "resolve_backend",
    "mark_and_decrement",
    "sparse_decrements",
    "sparse_coverage_delta",
    "apply_sparse_delta",
    "CoverageState",
    "SketchRRCollection",
    "SketchCoverageState",
    "sketch_lazy_greedy",
    "hll_estimate",
    "hll_relative_error",
    "estimate_bank_degrees",
]
