"""Maximum coverage: problem abstraction, greedy engines, NEWGREEDI, GREEDI."""

from .greedi import greedi, partition_sets, randgreedi
from .greedy import (
    BucketQueue,
    GreedyResult,
    greedy_max_coverage,
    naive_greedy_max_coverage,
)
from .newgreedi import NewGreeDiResult, gather_coverage_counts, newgreedi
from .problem import CoverageInstance

__all__ = [
    "CoverageInstance",
    "BucketQueue",
    "GreedyResult",
    "greedy_max_coverage",
    "naive_greedy_max_coverage",
    "NewGreeDiResult",
    "newgreedi",
    "gather_coverage_counts",
    "greedi",
    "randgreedi",
    "partition_sets",
]
