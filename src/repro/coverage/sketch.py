"""Sketch coverage backend: HyperLogLog register banks per node.

The flat CSR store keeps every RR set exactly, so its memory grows with
``theta * E[|R|]`` — the scaling wall ROADMAP item 3 names.  This module
trades exactness for a fixed-size summary: each node ``v`` keeps an
``m = 2**precision`` byte HyperLogLog register row estimating the number
of *distinct* RR sets containing ``v`` (Göktürk & Kaya, arXiv:2105.04023;
DiFuseR, arXiv:2410.14047).  The whole bank is one packed
``(num_nodes * m,)`` ``uint8`` array — ``O(n * m)`` bytes, independent of
how many RR sets were generated.

Determinism across executors comes for free from the algebra: every RR
set gets a *global* id (machine offset + local index), the id is hashed
once with splitmix64, and every member node applies the same
``(register, rho)`` update.  Register merge is ``max`` — commutative and
idempotent — so the master bank is bit-identical no matter which
executor, wave order, or fault-recovery path delivered the updates, and
seed selection (a pure function of the bank) is bit-identical too.

Three layers mirror the exact path:

* :class:`SketchRRCollection` — the per-machine store (same append/read
  protocol as :class:`~repro.ris.flat.FlatRRCollection`), plus a per-wave
  *register journal* so ingests ship only the registers a wave touched;
* :class:`SketchCoverageState` — the master-side merged bank, maintained
  through the same MapPhase → GatherPhase → MasterPhase wave protocol as
  :class:`~repro.coverage.state.CoverageState`, with gathers charged the
  delta + varint size of each machine's sparse ``(register key, rho)``
  vector;
* :func:`sketch_lazy_greedy` — CELF-style lazy greedy over estimated
  marginal gains, with fresh re-evaluation of the top bucket before every
  pick to guard against sketch noise reordering stale gains.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..cluster.executor import GatherPhase, MapPhase, MasterPhase
from ..cluster.machine import Machine
from ..ris.wire import tuple_vector_nbytes
from .greedy import GreedyResult, _pad_with_unselected

__all__ = [
    "MIN_PRECISION",
    "MAX_PRECISION",
    "SketchRRCollection",
    "SketchCoverageState",
    "splitmix64",
    "register_updates",
    "merge_register_updates",
    "hll_estimate",
    "hll_relative_error",
    "estimate_bank_degrees",
    "sketch_lazy_greedy",
]

#: Supported register-count exponents: ``m = 2**precision`` registers per
#: node, one byte each.  4 is the smallest HyperLogLog with published
#: bias constants; 16 (64 KiB per node) is already past the point where
#: the flat store is cheaper.
MIN_PRECISION = 4
MAX_PRECISION = 16

#: Bit position of the machine id inside a global set id.  Machine ``i``
#: hashes set ids ``i * 2**44 + local_index``, so collections on
#: different machines never collide before ``2**44`` sets per machine.
_MACHINE_SHIFT = 44


# ----------------------------------------------------------------------
# Hashing and register arithmetic (vectorized, no per-set Python objects)
# ----------------------------------------------------------------------
def splitmix64(values: np.ndarray) -> np.ndarray:
    """The splitmix64 finalizer over a ``uint64`` array.

    A full-period bijection on 64-bit integers whose output passes
    BigCrush — the standard cheap stand-in for a random hash of
    sequential ids, which is exactly what global RR-set ids are.
    """
    z = np.asarray(values, dtype=np.uint64) + np.uint64(0x9E3779B97F4A7C15)
    z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return z ^ (z >> np.uint64(31))


def _bit_length(values: np.ndarray) -> np.ndarray:
    """Vectorized ``int.bit_length`` for ``uint64`` (exact at all widths).

    Binary search over shifts — ``np.log2`` would lose precision past 53
    bits and misplace ``rho`` near powers of two.
    """
    x = np.asarray(values, dtype=np.uint64).copy()
    out = np.zeros(x.shape, dtype=np.int64)
    for shift in (32, 16, 8, 4, 2, 1):
        s = np.uint64(shift)
        big = x >= (np.uint64(1) << s)
        out[big] += shift
        x[big] >>= s
    out[x > 0] += 1
    return out


def register_updates(set_ids: np.ndarray, precision: int) -> Tuple[np.ndarray, np.ndarray]:
    """Per-set ``(register, rho)`` updates for a batch of global set ids.

    The top ``precision`` hash bits pick the register; ``rho`` is the
    rank (leading-zero count + 1) of the remaining ``64 - precision``
    bits — the textbook HyperLogLog split, computed in one vectorized
    pass the way :mod:`repro.coverage.kernel` computes sparse deltas.
    """
    hashed = splitmix64(np.asarray(set_ids, dtype=np.uint64))
    width = 64 - precision
    registers = (hashed >> np.uint64(width)).astype(np.int64)
    rest = hashed & ((np.uint64(1) << np.uint64(width)) - np.uint64(1))
    rhos = width + 1 - _bit_length(rest)
    return registers, rhos


def merge_register_updates(
    keys: np.ndarray, rhos: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Collapse raw updates to a sorted unique ``(key, max rho)`` vector.

    ``keys`` are flat register addresses (``node * m + register``).  The
    output is sorted ascending — the layout
    :func:`repro.ris.wire.tuple_vector_nbytes` charges, and the layout
    the master merges with one fancy-indexed ``maximum``.
    """
    keys = np.asarray(keys, dtype=np.int64)
    rhos = np.asarray(rhos, dtype=np.int64)
    if keys.size == 0:
        return keys, rhos
    order = np.argsort(keys, kind="stable")
    keys = keys[order]
    rhos = rhos[order]
    starts = np.empty(keys.size, dtype=bool)
    starts[0] = True
    np.not_equal(keys[1:], keys[:-1], out=starts[1:])
    boundaries = np.flatnonzero(starts)
    return keys[boundaries], np.maximum.reduceat(rhos, boundaries)


# ----------------------------------------------------------------------
# Estimation
# ----------------------------------------------------------------------
def _alpha(m: int) -> float:
    if m == 16:
        return 0.673
    if m == 32:
        return 0.697
    if m == 64:
        return 0.709
    return 0.7213 / (1.0 + 1.079 / m)


def hll_estimate(registers: np.ndarray) -> np.ndarray:
    """Cardinality estimate(s) from register rows (last axis = registers).

    The Flajolet et al. raw harmonic-mean estimator with the small-range
    linear-counting correction; the large-range correction is unnecessary
    with 64-bit hashes.  Accepts a single ``(m,)`` row or a stacked
    ``(..., m)`` bank and estimates along the last axis.
    """
    regs = np.asarray(registers)
    m = regs.shape[-1]
    raw = _alpha(m) * m * m / np.ldexp(1.0, -regs.astype(np.int64)).sum(axis=-1)
    zeros = np.count_nonzero(regs == 0, axis=-1)
    small = (raw <= 2.5 * m) & (zeros > 0)
    if np.ndim(raw) == 0:
        if small:
            return float(m * math.log(m / int(zeros)))
        return float(raw)
    out = np.asarray(raw, dtype=np.float64)
    if np.any(small):
        linear = m * np.log(m / np.where(zeros > 0, zeros, 1))
        out = np.where(small, linear, out)
    return out


def hll_relative_error(precision: int) -> float:
    """The standard error ``1.04 / sqrt(m)`` of an ``m = 2**precision`` sketch."""
    return 1.04 / math.sqrt(float(1 << precision))


def estimate_bank_degrees(bank: np.ndarray, chunk: int = 4096) -> np.ndarray:
    """Per-node coverage-degree estimates over a ``(n, m)`` register bank.

    Chunked so the transient ``float64`` expansion stays a few MiB even
    on livejournal-scale banks.
    """
    out = np.empty(bank.shape[0], dtype=np.float64)
    for lo in range(0, bank.shape[0], chunk):
        out[lo : lo + chunk] = hll_estimate(bank[lo : lo + chunk])
    return out


# ----------------------------------------------------------------------
# Per-machine store
# ----------------------------------------------------------------------
class SketchRRCollection:
    """An RR-set store that keeps register banks instead of set contents.

    Implements the growth/accounting protocol of
    :class:`~repro.ris.flat.FlatRRCollection` (``num_nodes`` /
    ``num_sets`` / ``total_size`` / ``total_edges_examined`` /
    ``append_arrays`` / ``add`` / ``extend`` / ``coverage_of`` /
    ``nbytes``), so generation phases and the round driver accept it
    unchanged — but reads return *estimates* and individual set contents
    are gone the moment they are folded in.

    Appends additionally journal each wave's merged sparse
    ``(register key, rho)`` vector so
    :meth:`register_delta` can replay exactly the registers a wave
    touched; :class:`SketchCoverageState` prunes the journal after every
    ingest, keeping store memory ``O(n * m)`` regardless of ``theta``.
    """

    def __init__(self, num_nodes: int, precision: int = 10, machine_id: int = 0) -> None:
        if num_nodes <= 0:
            raise ValueError(f"num_nodes must be positive, got {num_nodes}")
        if not MIN_PRECISION <= precision <= MAX_PRECISION:
            raise ValueError(
                f"precision must be in [{MIN_PRECISION}, {MAX_PRECISION}], "
                f"got {precision}"
            )
        if not 0 <= machine_id < (1 << (64 - _MACHINE_SHIFT)):
            raise ValueError(f"machine_id out of range: {machine_id}")
        self._num_nodes = num_nodes
        self._precision = precision
        self._m = 1 << precision
        self._machine_id = machine_id
        self._registers = np.zeros(num_nodes * self._m, dtype=np.uint8)
        self._num_sets = 0
        self._total_size = 0
        self._total_edges_examined = 0
        #: Wave journal: ``(start_set, end_set, keys, rhos)`` per append.
        self._journal: List[Tuple[int, int, np.ndarray, np.ndarray]] = []

    # -- protocol surface ------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    @property
    def num_sets(self) -> int:
        return self._num_sets

    @property
    def total_size(self) -> int:
        return self._total_size

    @property
    def total_edges_examined(self) -> int:
        return self._total_edges_examined

    @property
    def precision(self) -> int:
        return self._precision

    @property
    def num_registers(self) -> int:
        """Registers per node, ``m = 2**precision``."""
        return self._m

    @property
    def machine_id(self) -> int:
        return self._machine_id

    @property
    def registers(self) -> np.ndarray:
        """The flat ``(num_nodes * m,)`` register array (do not mutate)."""
        return self._registers

    def register_bank(self) -> np.ndarray:
        """The registers as a ``(num_nodes, m)`` view (do not mutate)."""
        return self._registers.reshape(self._num_nodes, self._m)

    def __len__(self) -> int:
        return self._num_sets

    # -- growth ----------------------------------------------------------
    def append_arrays(self, nodes: np.ndarray, offsets: np.ndarray, edges_examined=0) -> None:
        """Fold a flat CSR wave of RR sets into the register bank.

        Mirrors :meth:`FlatRRCollection.append_arrays
        <repro.ris.flat.FlatRRCollection.append_arrays>`: ``nodes`` /
        ``offsets`` are the wave's CSR arrays, ``edges_examined`` a wave
        aggregate or per-set vector.  Each new set's global id is hashed
        once; every member node receives the same ``(register, rho)``
        update, applied with one sorted-unique fancy-indexed ``maximum``.
        """
        offsets = np.asarray(offsets, dtype=np.int64)
        nodes = np.asarray(nodes, dtype=np.int64)
        if offsets.size == 0 or offsets[0] != 0 or offsets[-1] != nodes.size:
            raise ValueError("offsets must start at 0 and end at nodes.size")
        if nodes.size and (nodes.min() < 0 or nodes.max() >= self._num_nodes):
            raise ValueError(f"node ids must lie in [0, {self._num_nodes})")
        count = int(offsets.size - 1)
        if np.ndim(edges_examined) > 0:
            per_set = np.asarray(edges_examined, dtype=np.int64)
            if per_set.size != count:
                raise ValueError(
                    f"edges_examined has {per_set.size} entries for {count} sets"
                )
            self._total_edges_examined += int(per_set.sum())
        else:
            self._total_edges_examined += int(edges_examined)
        if count == 0:
            return
        set_ids = (np.uint64(self._machine_id) << np.uint64(_MACHINE_SHIFT)) + np.arange(
            self._num_sets, self._num_sets + count, dtype=np.uint64
        )
        registers, rhos = register_updates(set_ids, self._precision)
        lengths = np.diff(offsets)
        member_set = np.repeat(np.arange(count, dtype=np.int64), lengths)
        keys, merged = merge_register_updates(
            nodes * self._m + registers[member_set], rhos[member_set]
        )
        if keys.size:
            # Keys are unique, so one gather + one fancy store suffices
            # (np.maximum.at would be correct but much slower).
            self._registers[keys] = np.maximum(
                self._registers[keys], merged.astype(np.uint8)
            )
        self._journal.append((self._num_sets, self._num_sets + count, keys, merged))
        self._num_sets += count
        self._total_size += int(nodes.size)

    def add(self, sample) -> None:
        """Fold one :class:`~repro.ris.rrset.RRSample` in (reference protocol)."""
        nodes = np.asarray(sample.nodes, dtype=np.int64)
        self.append_arrays(
            nodes,
            np.array([0, nodes.size], dtype=np.int64),
            edges_examined=sample.edges_examined,
        )

    def extend(self, samples) -> None:
        for sample in samples:
            self.add(sample)

    # -- wave protocol ---------------------------------------------------
    def register_delta(self, start: int = 0) -> Tuple[np.ndarray, np.ndarray]:
        """Merged sparse ``(key, rho)`` vector of sets ``start..num_sets``.

        ``start`` must be a wave boundary still held by the journal — the
        driver's watermark-aligned growth guarantees this, and the
        boundary check catches misaligned callers instead of silently
        dropping updates.
        """
        if start == self._num_sets:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty
        entries = [entry for entry in self._journal if entry[0] >= start]
        if not entries or entries[0][0] != start:
            retained = self._journal[0][0] if self._journal else self._num_sets
            raise ValueError(
                f"register journal cannot replay a delta from set {start}: "
                f"retained waves start at {retained} (pruned waves are gone; "
                "deltas must align with ingest watermarks)"
            )
        return merge_register_updates(
            np.concatenate([entry[2] for entry in entries]),
            np.concatenate([entry[3] for entry in entries]),
        )

    def prune_journal(self, upto: int | None = None) -> None:
        """Drop journal entries fully ingested below ``upto`` (default: all)."""
        if upto is None:
            upto = self._num_sets
        self._journal = [entry for entry in self._journal if entry[1] > upto]

    # -- reads (estimates) -----------------------------------------------
    def coverage_of(self, seeds: Sequence[int]) -> float:
        """Estimated number of distinct RR sets hit by ``seeds``."""
        seeds = np.asarray(list(seeds), dtype=np.int64)
        if seeds.size == 0 or self._num_sets == 0:
            return 0.0
        union = np.maximum.reduce(self.register_bank()[seeds], axis=0)
        return float(min(hll_estimate(union), float(self._num_sets)))

    def estimate_degrees(self) -> np.ndarray:
        """Per-node estimated coverage degrees (the sketch's ``Delta``)."""
        return estimate_bank_degrees(self.register_bank())

    def nbytes(self) -> int:
        """Resident bytes: register bank plus un-pruned journal entries."""
        journal = sum(entry[2].nbytes + entry[3].nbytes for entry in self._journal)
        return int(self._registers.nbytes + journal)

    def __repr__(self) -> str:
        return (
            f"SketchRRCollection(num_nodes={self._num_nodes}, "
            f"precision={self._precision}, num_sets={self._num_sets})"
        )


# ----------------------------------------------------------------------
# Master-side merged state
# ----------------------------------------------------------------------
class SketchCoverageState:
    """Master-side merged register bank over a distributed collection.

    The sketch twin of :class:`~repro.coverage.state.CoverageState`: the
    same per-machine watermarks, the same MapPhase (each machine builds
    its wave's sparse register delta) → GatherPhase (charged the
    delta + varint compressed vector size) → MasterPhase (fold deltas)
    ingest protocol, so simulated, multiprocessing and socket executors
    carry sketch updates with identical byte accounting.  Because the
    merge is an idempotent ``max``, the resulting bank — and therefore
    seed selection — is bit-identical across executors and wave orders.
    """

    def __init__(self, num_nodes: int, num_machines: int, precision: int = 10) -> None:
        if num_nodes <= 0:
            raise ValueError(f"num_nodes must be positive, got {num_nodes}")
        if num_machines < 1:
            raise ValueError(f"num_machines must be >= 1, got {num_machines}")
        if not MIN_PRECISION <= precision <= MAX_PRECISION:
            raise ValueError(
                f"precision must be in [{MIN_PRECISION}, {MAX_PRECISION}], "
                f"got {precision}"
            )
        self.num_nodes = num_nodes
        self.num_machines = num_machines
        self.precision = precision
        self.num_registers = 1 << precision
        #: Flat merged bank, ``max`` over every ingested machine delta.
        self.registers = np.zeros(num_nodes * self.num_registers, dtype=np.uint8)
        #: Per-machine number of RR sets already folded into the bank.
        self.watermarks: List[int] = [0] * num_machines

    def bank(self) -> np.ndarray:
        """The merged registers as a ``(num_nodes, m)`` view (read-only use)."""
        return self.registers.reshape(self.num_nodes, self.num_registers)

    def _apply(self, keys: np.ndarray, rhos: np.ndarray) -> None:
        if keys.size:
            self.registers[keys] = np.maximum(
                self.registers[keys], rhos.astype(np.uint8)
            )

    def ingest(
        self,
        executor,
        stores: Sequence,
        label: str = "sketch-state",
        communicate: bool = True,
    ) -> None:
        """Fold each store's registers beyond its watermark into the bank.

        Same phase shape as :meth:`CoverageState.ingest
        <repro.coverage.state.CoverageState.ingest>`; afterwards each
        store's journal is pruned to its watermark, which is what bounds
        sketch memory by ``O(n * m)`` instead of ``O(theta)``.
        """
        if len(stores) != self.num_machines:
            raise ValueError(f"expected {self.num_machines} stores, got {len(stores)}")
        if all(store.num_sets == mark for store, mark in zip(stores, self.watermarks)):
            return
        starts = list(self.watermarks)

        def wave_delta(machine: Machine):
            return stores[machine.machine_id].register_delta(
                start=starts[machine.machine_id]
            )

        deltas = executor.run_phase(MapPhase(f"{label}/map", wave_delta)).results
        if communicate:
            executor.run_phase(
                GatherPhase(
                    f"{label}/gather",
                    tuple(tuple_vector_nbytes(keys, rhos) for keys, rhos in deltas),
                )
            )

            def reduce_deltas() -> None:
                for keys, rhos in deltas:
                    self._apply(keys, rhos)

            executor.run_phase(MasterPhase(f"{label}/reduce", reduce_deltas))
        else:
            for keys, rhos in deltas:
                self._apply(keys, rhos)
        self.watermarks = [store.num_sets for store in stores]
        for store in stores:
            store.prune_journal()

    def rebuild_from(self, stores: Sequence) -> np.ndarray:
        """Oracle path: re-merge the full banks without touching state."""
        return np.maximum.reduce([np.asarray(store.registers) for store in stores])

    def estimate(self, seeds: Sequence[int]) -> float:
        """Estimated distinct covered sets for a seed set, from the bank."""
        seeds = np.asarray(list(seeds), dtype=np.int64)
        if seeds.size == 0:
            return 0.0
        return float(hll_estimate(np.maximum.reduce(self.bank()[seeds], axis=0)))

    def nbytes(self) -> int:
        return int(self.registers.nbytes)

    def __repr__(self) -> str:
        return (
            f"SketchCoverageState(num_nodes={self.num_nodes}, "
            f"precision={self.precision}, ingested={self.watermarks})"
        )


# ----------------------------------------------------------------------
# Selection
# ----------------------------------------------------------------------
def sketch_lazy_greedy(
    bank: np.ndarray,
    k: int,
    num_elements: int,
    guard: int = 8,
) -> GreedyResult:
    """CELF lazy greedy over estimated marginal gains from a register bank.

    ``bank`` is the merged ``(n, m)`` master bank; candidates are nodes,
    elements are RR sets, and a candidate's marginal gain is the increase
    of the *union* sketch's estimate.  Stale gains are re-filed lazily as
    in :class:`~repro.coverage.greedy.BucketQueue`, but because sketch
    estimates are noisy (not exactly submodular), every pick additionally
    re-evaluates the whole top-``guard`` bucket fresh against the current
    union before trusting the ordering.  Ties break to the lowest node
    id, matching the exact engines, and the whole routine is a pure
    function of the bank — the source of cross-executor determinism.

    Returns a :class:`~repro.coverage.greedy.GreedyResult` whose
    ``coverage``/``marginals`` are float estimates (the exact engines
    return ints; ``fraction`` works identically on both).
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if guard < 1:
        raise ValueError(f"guard must be >= 1, got {guard}")
    bank = np.asarray(bank)
    if bank.ndim != 2:
        raise ValueError(f"bank must be 2-D (nodes x registers), got {bank.ndim}-D")
    n = bank.shape[0]
    gains = estimate_bank_degrees(bank)
    stamps = np.full(n, -1, dtype=np.int64)
    selected = np.zeros(n, dtype=bool)
    current = np.zeros(bank.shape[1], dtype=np.uint8)
    current_est = 0.0
    seeds: List[int] = []
    marginals: List[float] = []

    for step in range(min(k, n)):
        union_cache: Dict[int, float] = {}
        while True:
            masked = np.where(selected, -np.inf, gains)
            if n > guard:
                top = np.argpartition(masked, -guard)[-guard:]
            else:
                top = np.arange(n)
            top = top[~selected[top]]
            stale = top[stamps[top] != step]
            if stale.size == 0:
                v = int(np.argmax(masked))
                if stamps[v] == step:
                    break
                stale = np.array([v])
            for u in stale:
                u = int(u)
                union_est = float(hll_estimate(np.maximum(current, bank[u])))
                union_cache[u] = union_est
                gains[u] = max(union_est - current_est, 0.0)
                stamps[u] = step
        seeds.append(v)
        marginals.append(float(gains[v]))
        selected[v] = True
        np.maximum(current, bank[v], out=current)
        current_est = max(current_est, union_cache[v])
        gains[v] = 0.0

    coverage = float(min(current_est, float(num_elements)))
    _pad_with_unselected(seeds, k, n)
    return GreedyResult(
        seeds=seeds,
        coverage=coverage,
        num_elements=num_elements,
        marginals=marginals,
    )
