"""Centralized greedy maximum coverage with the paper's lazy bucket scan.

Algorithm 1's master-side engine: a vector ``D`` where ``D(d)`` lists the
sets whose *recorded* marginal coverage is ``d``.  The scan walks ``d``
downward; a set found with an outdated record is lazily re-filed into the
bucket of its current marginal (lines 9-11 of Algorithm 1).  Because
marginals only shrink under submodularity, a single downward pass with
re-filing suffices for all ``k`` selections.

Buckets are kept as min-heaps of set ids, which pins the tie-breaking rule
to *lowest id among the largest marginals*.  That determinism is what lets
tests assert the exact Lemma 2 equivalence between this engine, the naive
re-scan oracle below, and the distributed NEWGREEDI.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from .kernel import as_flat, mark_and_decrement, resolve_backend

__all__ = ["BucketQueue", "GreedyResult", "greedy_max_coverage", "naive_greedy_max_coverage"]


class BucketQueue:
    """The vector ``D`` of Algorithm 1 with lazy re-filing.

    Parameters
    ----------
    counts:
        Live marginal-coverage array, *shared with the caller*: the queue
        reads ``counts[u]`` at pop time to detect outdated records.  The
        caller decrements it as elements become covered.
    candidates:
        Optional subset of set ids eligible for selection (used by GREEDI's
        per-partition runs); defaults to every id.
    """

    def __init__(self, counts: np.ndarray, candidates: Sequence[int] | None = None) -> None:
        self._counts = counts
        self._buckets: Dict[int, List[int]] = {}
        ids = range(counts.size) if candidates is None else candidates
        max_d = 0
        for set_id in ids:
            d = int(counts[set_id])
            if d > 0:
                self._buckets.setdefault(d, []).append(int(set_id))
                max_d = max(max_d, d)
        for heap in self._buckets.values():
            heapq.heapify(heap)
        self._cursor = max_d

    def pop_max(self) -> int | None:
        """Return the lowest-id set with the largest current marginal.

        Returns ``None`` when every remaining marginal is zero.  The popped
        set is removed; the caller must then mark its elements covered and
        decrement the shared counts array.
        """
        d = self._cursor
        while d > 0:
            heap = self._buckets.get(d)
            if not heap:
                d -= 1
                continue
            set_id = heap[0]
            current = int(self._counts[set_id])
            if current < d:
                # Outdated record: re-file into the bucket of the current
                # marginal (Algorithm 1 lines 9-11).
                heapq.heappop(heap)
                if current > 0:
                    heapq.heappush(self._buckets.setdefault(current, []), set_id)
                continue
            heapq.heappop(heap)
            self._cursor = d
            return set_id
        self._cursor = 0
        return None


@dataclass
class GreedyResult:
    """Outcome of a greedy maximum-coverage run."""

    seeds: List[int]
    coverage: int
    num_elements: int
    marginals: List[int] = field(default_factory=list)

    @property
    def fraction(self) -> float:
        """Fraction of elements covered, ``F_R(S)`` in the paper."""
        return self.coverage / self.num_elements if self.num_elements else 0.0


def _pad_with_unselected(seeds: List[int], k: int, num_universe_sets: int) -> None:
    """Fill up to ``k`` seeds with the lowest-id unselected sets.

    Invoked when every remaining marginal is zero (all elements already
    covered); padding keeps the output size exactly ``k`` as the problem
    statement requires.
    """
    chosen = set(seeds)
    candidate = 0
    while len(seeds) < k and candidate < num_universe_sets:
        if candidate not in chosen:
            seeds.append(candidate)
            chosen.add(candidate)
        candidate += 1


def greedy_max_coverage(
    stores: Sequence,
    k: int,
    backend: str = "flat",
    initial_counts: np.ndarray | None = None,
) -> GreedyResult:
    """Lazy bucket greedy over one or more element stores.

    ``stores`` is any sequence of objects implementing the store protocol
    (:class:`~repro.coverage.problem.CoverageInstance`,
    :class:`~repro.ris.collection.RRCollection` or
    :class:`~repro.ris.flat.FlatRRCollection`); passing several emulates a
    centralized machine that has gathered all machines' elements.

    ``backend`` selects the inner-loop implementation: ``"flat"`` (the
    default) converts each store to CSR arrays and runs the vectorized
    kernel of :mod:`repro.coverage.kernel`; ``"reference"`` walks the
    store protocol element by element and serves as the oracle the
    differential tests compare against.  Both produce byte-for-byte the
    same result.

    ``initial_counts`` supplies pre-aggregated coverage counts (e.g. from
    an incrementally maintained
    :class:`~repro.coverage.state.CoverageState`), skipping the
    ``O(total incidence)`` aggregation pass here.  The array is copied,
    never mutated.

    Complexity is linear in the total incidence size: every
    (element, member) link is touched at most twice, matching the paper's
    analysis of Algorithm 1.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if not stores:
        raise ValueError("need at least one element store")
    resolve_backend(backend)
    num_universe_sets = stores[0].num_nodes
    for store in stores:
        if store.num_nodes != num_universe_sets:
            raise ValueError("all stores must share the same universe of sets")
    if backend == "flat":
        stores = [as_flat(store) for store in stores]
    if initial_counts is not None:
        if initial_counts.size != num_universe_sets:
            raise ValueError("initial_counts has the wrong length")
        counts = initial_counts.astype(np.int64, copy=True)
    else:
        counts = np.zeros(num_universe_sets, dtype=np.int64)
        for store in stores:
            counts += store.coverage_counts()

    covered = [np.zeros(store.num_sets, dtype=bool) for store in stores]
    queue = BucketQueue(counts)
    seeds: List[int] = []
    marginals: List[int] = []
    coverage = 0
    num_elements = sum(store.num_sets for store in stores)

    while len(seeds) < k:
        seed = queue.pop_max()
        if seed is None:
            break
        gained = 0
        for store_idx, store in enumerate(stores):
            flags = covered[store_idx]
            if backend == "flat":
                gained += mark_and_decrement(store, seed, flags, counts)
                continue
            for element in store.sets_containing(seed):
                if flags[element]:
                    continue
                flags[element] = True
                gained += 1
                counts[store.get(element)] -= 1
        seeds.append(seed)
        marginals.append(gained)
        coverage += gained
    _pad_with_unselected(seeds, k, num_universe_sets)
    return GreedyResult(
        seeds=seeds,
        coverage=coverage,
        num_elements=num_elements,
        marginals=marginals,
    )


def naive_greedy_max_coverage(stores: Sequence, k: int) -> GreedyResult:
    """Reference oracle: re-scan every set's marginal each iteration.

    Quadratic and only fit for tests, but shares no data structure with
    :func:`greedy_max_coverage`, making the exact-equality tests between
    the two (and against NEWGREEDI) meaningful.  Tie-breaking: lowest id
    among the largest marginals; zero-marginal iterations pad with the
    lowest-id unselected sets.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    num_universe_sets = stores[0].num_nodes
    covered = [set() for _ in stores]
    seeds: List[int] = []
    marginals: List[int] = []
    num_elements = sum(store.num_sets for store in stores)

    while len(seeds) < k:
        best_set, best_gain = None, 0
        for candidate in range(num_universe_sets):
            if candidate in seeds:
                continue
            gain = 0
            for store_idx, store in enumerate(stores):
                done = covered[store_idx]
                gain += sum(1 for e in store.sets_containing(candidate) if e not in done)
            if gain > best_gain:
                best_set, best_gain = candidate, gain
        if best_set is None:
            break
        for store_idx, store in enumerate(stores):
            covered[store_idx].update(store.sets_containing(best_set))
        seeds.append(best_set)
        marginals.append(best_gain)
    _pad_with_unselected(seeds, k, num_universe_sets)
    return GreedyResult(
        seeds=seeds,
        coverage=sum(len(c) for c in covered),
        num_elements=num_elements,
        marginals=marginals,
    )
