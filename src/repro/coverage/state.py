"""Persistent master-side coverage state, maintained incrementally.

Every adaptive RIS algorithm keeps, on the master, the aggregated
marginal-coverage vector ``Delta`` — how many (still uncovered) RR sets
each node appears in across all machines.  Before the round driver, DIIMM
maintained it incrementally while D-SSA and D-OPIM-C rebuilt it from the
*entire* distributed collection at the start of every selection call:
``O(total RR size)`` of re-aggregation per doubling round, the redundant
per-round recomputation this module removes.

:class:`CoverageState` owns the pristine counts array and a per-machine
watermark of how many RR sets have been ingested.  After each generation
wave, machines respond with the sparse ``(node, count)`` tuple vector of
their *new* sets only (:func:`~repro.coverage.kernel.sparse_coverage_delta`
— the Section III-C traffic optimisation, now applied to every
algorithm); the master folds the deltas in with
:func:`~repro.coverage.kernel.apply_sparse_delta`.  Selection rounds
borrow a reusable scratch copy via :meth:`selection_counts`, so the
pristine vector and the scratch buffer both carry over from round to
round — no per-round re-aggregation and no per-round allocation.

The counts produced this way are integer-for-integer identical to a full
rebuild (:meth:`rebuild_from` is the oracle the tests and the
``micro_incremental_coverage`` benchmark gate compare against), so seed
selection is byte-for-byte unchanged.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ..cluster.executor import GatherPhase, MapPhase, MasterPhase
from ..cluster.machine import Machine
from ..ris.wire import tuple_vector_nbytes
from .kernel import apply_sparse_delta, sparse_coverage_delta

__all__ = ["CoverageState"]

#: Bytes per raw ``(node, count)`` tuple; kept for reference/docs — the
#: gathers below charge the delta + varint compressed vector size
#: (:func:`repro.ris.wire.tuple_vector_nbytes`) instead.
TUPLE_BYTES = 8


class CoverageState:
    """Aggregated per-node coverage counts over a distributed collection.

    Parameters
    ----------
    num_nodes:
        Size of the node universe ``n``.
    num_machines:
        Number of per-machine stores feeding this state.
    """

    def __init__(self, num_nodes: int, num_machines: int) -> None:
        if num_nodes <= 0:
            raise ValueError(f"num_nodes must be positive, got {num_nodes}")
        if num_machines < 1:
            raise ValueError(f"num_machines must be >= 1, got {num_machines}")
        self.num_nodes = num_nodes
        self.num_machines = num_machines
        #: Pristine aggregated counts: RR sets per node, all machines.
        self.counts = np.zeros(num_nodes, dtype=np.int64)
        #: Per-machine number of RR sets already folded into ``counts``.
        self.watermarks: List[int] = [0] * num_machines
        # Reusable working buffer selection rounds decrement into.
        self._scratch = np.zeros(num_nodes, dtype=np.int64)
        # Copy-on-write flag: a forked state shares its parent's counts
        # array until its first ingest (see fork()).
        self._owned = True

    # ------------------------------------------------------------------
    # Copy-on-write forking (the warm pool's per-query snapshot)
    # ------------------------------------------------------------------
    def fork(self) -> "CoverageState":
        """A per-query snapshot sharing this state's counts copy-on-write.

        Selection never mutates :attr:`counts` (it borrows a scratch copy
        via :meth:`selection_counts`), so the fork shares the pristine
        array for free; the first :meth:`ingest` that must fold new sets
        copies it before writing.  Forks of a donated, no-longer-mutated
        state are therefore safe to hand to concurrent queries — each
        diverges into its own copy exactly when it ingests beyond the
        snapshot.
        """
        child = CoverageState.__new__(CoverageState)
        child.num_nodes = self.num_nodes
        child.num_machines = self.num_machines
        child.counts = self.counts
        child.watermarks = list(self.watermarks)
        child._scratch = np.zeros(self.num_nodes, dtype=np.int64)
        child._owned = False
        return child

    def _ensure_owned(self) -> None:
        if not self._owned:
            self.counts = self.counts.copy()
            self._owned = True

    # ------------------------------------------------------------------
    # Incremental maintenance
    # ------------------------------------------------------------------
    def ingest(
        self,
        executor,
        stores: Sequence,
        label: str = "coverage-state",
        communicate: bool = True,
    ) -> None:
        """Fold each store's RR sets beyond its watermark into the counts.

        Runs as executor phases: a map in which every machine builds the
        sparse ``(node, count)`` delta over its newly generated sets, a
        gather charged the compressed (delta + varint) size of each
        machine's vector (skipped with ``communicate=False`` — the
        single-machine algorithms, whose master and worker are the same
        host, meter the map but move no bytes), and a master-side
        reduce applying the deltas.
        """
        if len(stores) != self.num_machines:
            raise ValueError(f"expected {self.num_machines} stores, got {len(stores)}")
        if all(store.num_sets == mark for store, mark in zip(stores, self.watermarks)):
            return
        self._ensure_owned()
        starts = list(self.watermarks)

        def wave_delta(machine: Machine):
            return sparse_coverage_delta(
                stores[machine.machine_id], start=starts[machine.machine_id]
            )

        deltas = executor.run_phase(MapPhase(f"{label}/map", wave_delta)).results
        if communicate:
            executor.run_phase(
                GatherPhase(
                    f"{label}/gather",
                    tuple(tuple_vector_nbytes(nodes, counts) for nodes, counts in deltas),
                )
            )

            def reduce_deltas() -> None:
                for nodes, counts in deltas:
                    apply_sparse_delta(self.counts, nodes, counts)

            executor.run_phase(MasterPhase(f"{label}/reduce", reduce_deltas))
        else:
            for nodes, counts in deltas:
                apply_sparse_delta(self.counts, nodes, counts)
        self.watermarks = [store.num_sets for store in stores]

    def repair(
        self,
        machine_id: int,
        old_nodes: np.ndarray,
        new_nodes: np.ndarray,
    ) -> None:
        """Retraction delta: swap one machine's repaired set contents.

        When a graph update regenerates RR sets *below* this state's
        watermark, their old contributions are subtracted and the new
        ones added — no rebuild.  ``old_nodes`` / ``new_nodes`` are the
        concatenated contents of the replaced sets before and after the
        repair (set ids are stable, so membership counts are all that
        changes).  Sets at or above the watermark were never ingested
        and need no retraction.
        """
        if not 0 <= machine_id < self.num_machines:
            raise ValueError(f"machine_id {machine_id} out of range")
        self._ensure_owned()
        old_nodes = np.asarray(old_nodes, dtype=np.int64)
        new_nodes = np.asarray(new_nodes, dtype=np.int64)
        if old_nodes.size:
            self.counts -= np.bincount(old_nodes, minlength=self.num_nodes)
        if new_nodes.size:
            self.counts += np.bincount(new_nodes, minlength=self.num_nodes)

    def rebuild_from(self, stores: Sequence) -> np.ndarray:
        """Oracle path: re-aggregate the counts from the full stores.

        Returns the freshly built vector *without* touching the
        incremental state — differential tests and the benchmark gate
        compare it against :attr:`counts`.
        """
        total = np.zeros(self.num_nodes, dtype=np.int64)
        for store in stores:
            total += store.coverage_counts()
        return total

    # ------------------------------------------------------------------
    # Selection handoff
    # ------------------------------------------------------------------
    def selection_counts(self) -> np.ndarray:
        """A working copy of the counts for one selection round.

        The returned array is the state's reusable scratch buffer:
        selection decrements it freely as elements become covered while
        the pristine :attr:`counts` survives for the next round.  Only
        one selection may borrow it at a time — exactly the round
        driver's access pattern.
        """
        np.copyto(self._scratch, self.counts)
        return self._scratch

    def nbytes(self) -> int:
        """Resident bytes of the master state (counts + scratch buffer)."""
        return int(self.counts.nbytes + self._scratch.nbytes)

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Arrays capturing the state, ready for ``np.savez``."""
        return {
            "counts": self.counts.copy(),
            "watermarks": np.asarray(self.watermarks, dtype=np.int64),
        }

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Restore a :meth:`state_dict` snapshot (checkpoint resume)."""
        counts = np.asarray(state["counts"], dtype=np.int64)
        watermarks = [int(w) for w in np.asarray(state["watermarks"])]
        if counts.size != self.num_nodes:
            raise ValueError(
                f"checkpointed counts cover {counts.size} nodes, expected {self.num_nodes}"
            )
        if len(watermarks) != self.num_machines:
            raise ValueError(
                f"checkpointed watermarks cover {len(watermarks)} machines, "
                f"expected {self.num_machines}"
            )
        self.counts = counts
        self.watermarks = watermarks
        self._owned = True

    def __repr__(self) -> str:
        return (
            f"CoverageState(num_nodes={self.num_nodes}, "
            f"ingested={self.watermarks})"
        )
