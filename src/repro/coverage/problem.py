"""The set-element paradigm of maximum coverage.

Section III-B of the paper casts RIS-based seed selection as maximum
coverage: every RR set's index is an *element*, every graph node is a
*set*, and node ``v`` covers element ``j`` iff ``v in R_j``.  The same
paradigm also hosts the paper's standalone maximum-coverage experiment
(Fig 10), where a graph ``G = (V, E)`` is read as ``|V|`` sets over ``|V|``
elements: the set of node ``u`` is its neighborhood ``N_u``.

:class:`CoverageInstance` stores both directions of the incidence:

* ``element -> member sets`` (the RR-set contents), which the greedy's
  decrement pass walks, and
* ``set -> covered elements`` (the inverted index ``I(v)``), which the
  greedy's newly-covered pass walks.

:class:`~repro.ris.collection.RRCollection` exposes the same read
interface (``num_sets``/``get``/``sets_containing``/``coverage_counts``),
so every algorithm in this package accepts either store type.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

import numpy as np

from ..graphs.digraph import DirectedGraph

__all__ = ["CoverageInstance"]


class CoverageInstance:
    """An explicit maximum-coverage instance.

    Parameters
    ----------
    num_universe_sets:
        Number of sets (graph nodes in our applications); set ids are
        ``0 .. num_universe_sets - 1``.
    elements:
        One array/iterable of member-set ids per element.
    """

    def __init__(
        self,
        num_universe_sets: int,
        elements: Iterable[Iterable[int]],
    ) -> None:
        if num_universe_sets <= 0:
            raise ValueError(f"num_universe_sets must be positive, got {num_universe_sets}")
        self._num_universe_sets = num_universe_sets
        self._elements: List[np.ndarray] = []
        self._index: Dict[int, List[int]] = {}
        self._total_size = 0
        for members in elements:
            arr = np.unique(np.asarray(list(members), dtype=np.int32))
            if arr.size and (arr[0] < 0 or arr[-1] >= num_universe_sets):
                raise ValueError("element member ids must lie in [0, num_universe_sets)")
            idx = len(self._elements)
            self._elements.append(arr)
            for sid in arr:
                self._index.setdefault(int(sid), []).append(idx)
            self._total_size += int(arr.size)

    # -- store protocol (mirrors RRCollection) --------------------------
    @property
    def num_nodes(self) -> int:
        """Number of sets; named ``num_nodes`` to match :class:`RRCollection`."""
        return self._num_universe_sets

    @property
    def num_sets(self) -> int:
        """Number of *elements* stored (RRCollection naming: its RR sets)."""
        return len(self._elements)

    @property
    def total_size(self) -> int:
        """Total incidence size (sum of element cardinalities)."""
        return self._total_size

    def get(self, idx: int) -> np.ndarray:
        """Member-set ids of the ``idx``-th element."""
        return self._elements[idx]

    def sets_containing(self, set_id: int) -> List[int]:
        """Element indices covered by ``set_id`` (the inverted index)."""
        return self._index.get(int(set_id), [])

    def coverage_counts(self, start: int = 0) -> np.ndarray:
        """Per-set count of elements (index >= ``start``) it covers."""
        counts = np.zeros(self._num_universe_sets, dtype=np.int64)
        for members in self._elements[start:]:
            counts[members] += 1
        return counts

    def coverage_of(self, set_ids: Iterable[int]) -> int:
        """Number of elements covered by a collection of sets."""
        covered: set[int] = set()
        for sid in set(set_ids):
            covered.update(self.sets_containing(sid))
        return len(covered)

    def __len__(self) -> int:
        return len(self._elements)

    def __repr__(self) -> str:
        return (
            f"CoverageInstance(sets={self._num_universe_sets}, "
            f"elements={len(self._elements)}, total_size={self._total_size})"
        )

    # -- constructors ----------------------------------------------------
    @classmethod
    def from_sets(
        cls,
        num_universe_sets: int,
        elements: Sequence[Iterable[int]],
    ) -> "CoverageInstance":
        """Alias constructor for readability at call sites."""
        return cls(num_universe_sets, elements)

    @classmethod
    def from_graph(cls, graph: DirectedGraph, include_self: bool = False) -> "CoverageInstance":
        """The Fig 10 instance: set of node ``u`` covers ``u``'s out-neighbors.

        Element ``v`` lists every node ``u`` with an edge ``<u, v>`` (i.e.
        ``v``'s in-neighbors), optionally plus ``v`` itself.
        """
        elements = []
        for v in range(graph.num_nodes):
            members = graph.in_neighbors(v).tolist()
            if include_self:
                members.append(v)
            elements.append(members)
        return cls(graph.num_nodes, elements)

    def subinstance(self, element_indices: Sequence[int]) -> "CoverageInstance":
        """A new instance containing only the chosen elements (re-indexed)."""
        return CoverageInstance(
            self._num_universe_sets,
            [self._elements[i] for i in element_indices],
        )

    def split(
        self, num_parts: int, rng: np.random.Generator | None = None
    ) -> List["CoverageInstance"]:
        """Partition *elements* across ``num_parts`` stores (element-distributed).

        With ``rng`` the assignment is uniform random (the paper's
        random-uniform distribution of RR sets); otherwise round-robin.
        """
        if num_parts < 1:
            raise ValueError(f"num_parts must be >= 1, got {num_parts}")
        if rng is None:
            assignment = np.arange(len(self._elements)) % num_parts
        else:
            assignment = rng.integers(0, num_parts, size=len(self._elements))
        return [
            self.subinstance(np.flatnonzero(assignment == part))
            for part in range(num_parts)
        ]
