"""NEWGREEDI: element-distributed maximum coverage (paper Algorithm 1).

The elements (RR sets) live scattered across machines — each machine knows
the full contents of *its* elements but nothing about the others'.  The
master keeps only the aggregated marginal-coverage vector ``Delta`` and the
lazy bucket queue; per selected seed ``u`` it runs one MapReduce-style
round:

* **map** — machine ``s_i`` walks its inverted index ``I_i(u)``, marks the
  RR sets newly covered by ``u`` and counts, per node ``v`` appearing in
  them, how much ``v``'s marginal must drop (``Delta_i``);
* **reduce** — the master subtracts the gathered ``Delta_i`` maps.

Slaves respond with sparse ``(node, decrement)`` tuple vectors rather than
full length-``n`` vectors, the traffic optimisation the paper highlights.
The selection rule (largest marginal, lowest id on ties) is byte-for-byte
the one in :func:`repro.coverage.greedy.greedy_max_coverage`, which yields
the Lemma 2 guarantee: NEWGREEDI returns *exactly* the centralized greedy
solution, hence the full ``(1 - 1/e)``-approximation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..cluster.executor import (
    BroadcastPhase,
    Executor,
    GatherPhase,
    MapPhase,
    MasterPhase,
    as_executor,
)
from ..cluster.machine import Machine
from ..cluster.metrics import COMPUTATION
from ..ris.wire import tuple_vector_nbytes
from .greedy import BucketQueue, GreedyResult, _pad_with_unselected
from .kernel import as_flat, resolve_backend, sparse_decrements

__all__ = ["NewGreeDiResult", "newgreedi", "gather_coverage_counts"]

#: Bytes per raw ``(node, count)`` tuple; kept for reference/docs — the
#: gathers below charge the delta + varint compressed vector size
#: (:func:`repro.ris.wire.tuple_vector_nbytes`) instead.
TUPLE_BYTES = 8
#: Bytes to broadcast one chosen seed id.
SEED_BYTES = 8


def _sparse_delta_nbytes(delta, backend: str) -> int:
    """Compressed wire size of one slave's sparse ``(node, count)`` reply.

    Both backends must charge identical bytes for identical content, so
    the reference backend's dict is serialised in sorted-node order —
    exactly the order the flat kernel already produces.
    """
    if backend == "flat":
        nodes, decrements = delta
        return tuple_vector_nbytes(nodes, decrements)
    nodes = np.fromiter(sorted(delta), dtype=np.int64, count=len(delta))
    counts = np.asarray([delta[int(node)] for node in nodes], dtype=np.int64)
    return tuple_vector_nbytes(nodes, counts)


@dataclass
class NewGreeDiResult(GreedyResult):
    """Greedy result plus distributed bookkeeping."""

    covered_per_machine: List[int] | None = None

    @property
    def estimated_influence(self) -> float | None:
        """``n * F_R(S)`` is computed by callers who know ``n``; kept simple here."""
        return None


def _stores_of(executor: Executor, stores: Sequence | None) -> List:
    if stores is not None:
        if len(stores) != executor.num_machines:
            raise ValueError(
                f"expected {executor.num_machines} stores, got {len(stores)}"
            )
        return list(stores)
    resolved = []
    for machine in executor.machines:
        if machine.collection is None:
            raise ValueError(f"machine {machine.machine_id} has no RR collection")
        resolved.append(machine.collection)
    return resolved


def gather_coverage_counts(
    cluster,
    stores: Sequence | None = None,
    start_indices: Sequence[int] | None = None,
    label: str = "coverage-counts",
) -> np.ndarray:
    """Aggregate per-node coverage counts from all machines at the master.

    ``cluster`` may be a :class:`~repro.cluster.cluster.SimulatedCluster`
    or any :class:`~repro.cluster.executor.Executor` over one.  Each
    machine responds with a sparse vector of ``(node, count)`` tuples
    over its elements with index ``>= start_indices[i]`` — DIIMM passes
    the previous collection sizes here so only *newly generated* RR sets
    are communicated (the incremental variant of Section III-C).
    """
    executor = as_executor(cluster)
    stores = _stores_of(executor, stores)
    starts = list(start_indices) if start_indices is not None else [0] * len(stores)
    if len(starts) != len(stores):
        raise ValueError("start_indices must have one entry per machine")

    def compute_counts(machine: Machine) -> np.ndarray:
        return stores[machine.machine_id].coverage_counts(start=starts[machine.machine_id])

    per_machine = executor.run_phase(MapPhase(f"{label}/map", compute_counts)).results
    payload_sizes = tuple(
        tuple_vector_nbytes(np.flatnonzero(c), c[np.flatnonzero(c)])
        for c in per_machine
    )
    executor.run_phase(GatherPhase(f"{label}/gather", payload_sizes))

    def reduce_counts() -> np.ndarray:
        total = np.zeros_like(per_machine[0])
        for counts in per_machine:
            total += counts
        return total

    return executor.run_phase(MasterPhase(f"{label}/reduce", reduce_counts)).results


def newgreedi(
    cluster,
    k: int,
    stores: Sequence | None = None,
    initial_counts: np.ndarray | None = None,
    label: str = "newgreedi",
    backend: str = "flat",
    coverage_state=None,
) -> NewGreeDiResult:
    """Run Algorithm 1 on the cluster and return the size-``k`` solution.

    Parameters
    ----------
    cluster:
        The simulated cluster — or an
        :class:`~repro.cluster.executor.Executor` over one — whose
        metrics record the timing/traffic.  Every round is expressed as
        phase plans (map / gather / broadcast / master), so whichever
        executor runs them, the accounting shape is the same.
    k:
        Seed-set size.
    stores:
        Per-machine element stores.  Defaults to each machine's RR
        collection.
    initial_counts:
        Pre-aggregated coverage counts (DIIMM maintains them incrementally
        across its iterations); when omitted they are gathered here.  The
        array is copied, never mutated.
    coverage_state:
        An incrementally maintained
        :class:`~repro.coverage.state.CoverageState` covering ``stores``.
        Selection borrows its reusable scratch copy of the counts — no
        init gather, no per-call allocation.  Mutually exclusive with
        ``initial_counts``.
    label:
        Prefix for the recorded phase labels.
    backend:
        ``"flat"`` (default) runs each machine's map stage through the
        vectorized CSR kernel, converting non-flat stores once inside the
        metered reset phase; ``"reference"`` walks the store protocol
        with the original dict-accumulating loop.  Seeds, marginals,
        ``covered_per_machine`` and all charged bytes are identical
        between the two (regression-tested).

    Returns
    -------
    NewGreeDiResult
        Identical (seeds, coverage) to centralized greedy over the union of
        all stores — the Lemma 2 guarantee.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    resolve_backend(backend)
    executor = as_executor(cluster)
    stores = _stores_of(executor, stores)
    num_universe_sets = stores[0].num_nodes
    for store in stores:
        if store.num_nodes != num_universe_sets:
            raise ValueError("all stores must share the same universe of sets")

    if initial_counts is not None and coverage_state is not None:
        raise ValueError("pass either initial_counts or coverage_state, not both")
    if initial_counts is not None and initial_counts.size != num_universe_sets:
        raise ValueError("initial_counts has the wrong length")
    if coverage_state is not None and coverage_state.num_nodes != num_universe_sets:
        raise ValueError("coverage_state covers a different universe of sets")

    # Line 2 of Algorithm 1: label all RR sets as uncovered, per machine.
    # With the flat backend each machine also materialises its CSR view
    # here (a no-op for stores that are already flat), so any conversion
    # cost is metered as that machine's computation.
    def reset_covered(machine: Machine) -> int:
        store = stores[machine.machine_id]
        if backend == "flat":
            store = as_flat(store)
            stores[machine.machine_id] = store
        machine.state["covered"] = np.zeros(store.num_sets, dtype=bool)
        return store.num_sets

    element_counts = executor.run_phase(MapPhase(f"{label}/reset", reset_covered)).results
    num_elements = sum(element_counts)

    if coverage_state is not None:
        counts = coverage_state.selection_counts()
    elif initial_counts is None:
        counts = gather_coverage_counts(executor, stores, label=f"{label}/init")
    else:
        counts = initial_counts.astype(np.int64, copy=True)

    queue = BucketQueue(counts)
    seeds: List[int] = []
    marginals: List[int] = []
    covered_per_machine = [0] * executor.num_machines
    master_select_time = 0.0

    while len(seeds) < k:
        start = time.perf_counter()
        seed = queue.pop_max()
        master_select_time += time.perf_counter() - start
        if seed is None:
            break
        seeds.append(seed)
        executor.run_phase(BroadcastPhase(f"{label}/seed", SEED_BYTES))

        def map_stage(machine: Machine, seed: int = seed):
            store = stores[machine.machine_id]
            covered = machine.state["covered"]
            if backend == "flat":
                nodes, decrements, newly = sparse_decrements(store, seed, covered)
                return (nodes, decrements), newly
            delta: Dict[int, int] = {}
            newly = 0
            for element in store.sets_containing(seed):
                if covered[element]:
                    continue
                covered[element] = True
                newly += 1
                for node in store.get(element).tolist():
                    delta[node] = delta.get(node, 0) + 1
            return delta, newly

        responses = executor.run_phase(MapPhase(f"{label}/map", map_stage)).results
        # A response carries the compressed sparse (node, decrement)
        # vector, identical bytes whichever backend produced it.
        executor.run_phase(
            GatherPhase(
                f"{label}/gather",
                tuple(
                    _sparse_delta_nbytes(delta, backend) for delta, __ in responses
                ),
            )
        )

        def reduce_stage() -> int:
            gained = 0
            for machine_idx, (delta, newly) in enumerate(responses):
                covered_per_machine[machine_idx] += newly
                gained += newly
                if backend == "flat":
                    ids, decs = delta
                    if ids.size:
                        counts[ids] -= decs
                elif delta:
                    ids = np.fromiter(delta.keys(), dtype=np.int64, count=len(delta))
                    decs = np.fromiter(delta.values(), dtype=np.int64, count=len(delta))
                    counts[ids] -= decs
            return gained

        marginals.append(
            executor.run_phase(MasterPhase(f"{label}/reduce", reduce_stage)).results
        )

    executor.metrics.record_compute_phase(
        COMPUTATION, f"{label}/select", [master_select_time]
    )
    _pad_with_unselected(seeds, k, num_universe_sets)
    return NewGreeDiResult(
        seeds=seeds,
        coverage=sum(covered_per_machine),
        num_elements=num_elements,
        marginals=marginals,
        covered_per_machine=covered_per_machine,
    )
