"""Distributed Monte-Carlo influence estimation (Section II-B context).

The paper contrasts its contribution with prior distributed *influence
estimation* work (Lucier et al., KDD 2015; Nguyen et al., SIGMETRICS
2017): estimating ``sigma(S)`` for a *given* seed set parallelises
trivially — shard the simulations, average the results — but cannot drive
seed *selection*, where candidate sets appear dynamically.

This module implements that baseline service.  It is used by the test
suite as yet another independent estimator to validate seeds against, and
it demonstrates concretely why it does not compose into a selection
algorithm: each new candidate set requires a fresh full pass of cascades.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..cluster.cluster import SimulatedCluster
from ..cluster.machine import Machine
from ..cluster.metrics import COMPUTATION
from ..cluster.network import NetworkModel
from ..diffusion.base import DiffusionModel, get_model
from ..diffusion.spread import SpreadEstimate
from ..graphs.digraph import DirectedGraph

__all__ = ["distributed_spread_estimate"]


def distributed_spread_estimate(
    graph: DirectedGraph,
    seeds: Iterable[int],
    num_machines: int,
    num_samples: int,
    model: DiffusionModel | str = "ic",
    network: NetworkModel | None = None,
    seed: int = 0,
) -> SpreadEstimate:
    """Estimate ``sigma(seeds)`` with cascades sharded over machines.

    Each machine simulates its share of the ``num_samples`` cascades with
    its private RNG and responds with ``(sum, sum_of_squares, count)``;
    the master merges the moments into a mean and standard error.  The
    estimate is statistically identical to
    :func:`repro.diffusion.spread.estimate_spread` with the same total
    sample count.
    """
    if num_samples < 1:
        raise ValueError(f"num_samples must be >= 1, got {num_samples}")
    if isinstance(model, str):
        model = get_model(model)
    seed_list = list(seeds)
    cluster = SimulatedCluster(num_machines, network=network, seed=seed)
    shares = cluster.split_count(num_samples)

    def simulate(machine: Machine) -> tuple[float, float, int]:
        count = shares[machine.machine_id]
        total = 0.0
        total_sq = 0.0
        for __ in range(count):
            size = float(model.simulate(graph, seed_list, machine.rng).size)
            total += size
            total_sq += size * size
        return total, total_sq, count

    moments = cluster.map(COMPUTATION, "estimate/simulate", simulate)
    # Three 8-byte numbers per machine: the whole response.
    cluster.gather("estimate/gather", [24] * cluster.num_machines)

    def reduce_moments() -> SpreadEstimate:
        total = sum(m[0] for m in moments)
        total_sq = sum(m[1] for m in moments)
        count = sum(m[2] for m in moments)
        mean = total / count
        if count > 1:
            variance = max((total_sq - count * mean * mean) / (count - 1), 0.0)
            stderr = float(np.sqrt(variance / count))
        else:
            stderr = 0.0
        return SpreadEstimate(mean=mean, stderr=stderr, num_samples=count)

    return cluster.run_on_master("estimate/reduce", reduce_moments)
