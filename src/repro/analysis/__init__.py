"""Analysis utilities: martingale bounds and seed-quality validation."""

from .distributed_estimation import distributed_spread_estimate
from .martingale import (
    WorkloadBalance,
    empirical_workload_balance,
    martingale_tail,
    rr_size_lower_tail,
    rr_size_upper_tail,
    workload_concentration,
)
from .validation import (
    ApproximationReport,
    approximation_ratio_exact,
    compare_seed_sets,
    evaluate_seeds,
)

__all__ = [
    "martingale_tail",
    "rr_size_upper_tail",
    "rr_size_lower_tail",
    "workload_concentration",
    "WorkloadBalance",
    "empirical_workload_balance",
    "evaluate_seeds",
    "compare_seed_sets",
    "ApproximationReport",
    "approximation_ratio_exact",
    "distributed_spread_estimate",
]
