"""Seed-quality validation: Monte-Carlo spreads and approximation ratios.

The paper omits influence-spread plots because DIIMM provably returns the
same solution quality as IMM; this module provides the machinery our test
suite and EXPERIMENTS.md use to *demonstrate* that: Monte-Carlo evaluation
of selected seeds, head-to-head comparisons between algorithms, and exact
approximation ratios on brute-forceable graphs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..diffusion.base import DiffusionModel, get_model
from ..diffusion.exact import exact_optimum, exact_spread_ic, exact_spread_lt
from ..diffusion.spread import SpreadEstimate, estimate_spread
from ..graphs.digraph import DirectedGraph

__all__ = [
    "evaluate_seeds",
    "compare_seed_sets",
    "ApproximationReport",
    "approximation_ratio_exact",
]


def evaluate_seeds(
    graph: DirectedGraph,
    seeds: Iterable[int],
    model: DiffusionModel | str,
    num_samples: int,
    rng: np.random.Generator,
) -> SpreadEstimate:
    """Monte-Carlo spread of a seed set under a model (by name or instance)."""
    if isinstance(model, str):
        model = get_model(model)
    return estimate_spread(graph, seeds, model, num_samples, rng)


def compare_seed_sets(
    graph: DirectedGraph,
    seed_sets: Sequence[Iterable[int]],
    model: DiffusionModel | str,
    num_samples: int,
    rng: np.random.Generator,
) -> list[SpreadEstimate]:
    """Spread estimates for several seed sets under identical settings."""
    return [
        evaluate_seeds(graph, seeds, model, num_samples, rng) for seeds in seed_sets
    ]


@dataclass(frozen=True)
class ApproximationReport:
    """Exact quality of a solution against the brute-force optimum."""

    seeds: tuple[int, ...]
    seed_spread: float
    optimal_seeds: tuple[int, ...]
    optimal_spread: float

    @property
    def ratio(self) -> float:
        """``sigma(S) / OPT``; 1.0 means the solution is optimal."""
        if self.optimal_spread == 0.0:
            return 1.0
        return self.seed_spread / self.optimal_spread


def approximation_ratio_exact(
    graph: DirectedGraph,
    seeds: Iterable[int],
    model: str = "ic",
) -> ApproximationReport:
    """Exact approximation ratio on a tiny graph (exponential enumeration).

    Computes both ``sigma(seeds)`` and the true optimum for the same
    ``k = len(seeds)`` by brute force; only usable on graphs small enough
    for :mod:`repro.diffusion.exact`.
    """
    seed_tuple = tuple(sorted(set(int(s) for s in seeds)))
    spread = exact_spread_ic if model == "ic" else exact_spread_lt
    seed_spread = spread(graph, seed_tuple)
    optimal_seeds, optimal_spread = exact_optimum(graph, len(seed_tuple), model=model)
    return ApproximationReport(
        seeds=seed_tuple,
        seed_spread=seed_spread,
        optimal_seeds=tuple(optimal_seeds),
        optimal_spread=optimal_spread,
    )
