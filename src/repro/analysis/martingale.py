"""Martingale concentration bounds (paper Lemma 4 and Corollary 1).

Section III-D argues that distributed RIS balances its workload: the total
RR-set size (and total edges examined) on each machine concentrates within
``[1 - eps, 1 + eps]`` of its expectation with probability that improves
exponentially in the sample count.  These are the closed forms used there,
plus an empirical checker the ablation benchmark runs against actual
per-machine collections.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

__all__ = [
    "martingale_tail",
    "rr_size_upper_tail",
    "rr_size_lower_tail",
    "workload_concentration",
    "WorkloadBalance",
    "empirical_workload_balance",
]


def martingale_tail(gamma: float, variance_sum: float, step_bound: float) -> float:
    """Lemma 4: ``Pr[X_T - E[X_T] >= gamma]`` for a martingale with
    per-step variance summing to ``variance_sum`` and increments bounded
    by ``step_bound``."""
    if gamma <= 0:
        raise ValueError(f"gamma must be positive, got {gamma}")
    if variance_sum < 0 or step_bound < 0:
        raise ValueError("variance_sum and step_bound must be non-negative")
    denominator = 2.0 * (variance_sum + step_bound * gamma / 3.0)
    if denominator == 0.0:
        return 0.0
    return math.exp(-(gamma * gamma) / denominator)


def rr_size_upper_tail(num_sets: int, eps: float, n: int, eps_rr: float) -> float:
    """Corollary 1 upper tail: ``Pr[sum |R_j| >= (1+eps) T EPS]``.

    ``eps_rr`` is EPS, the expected RR-set size.
    """
    _validate(num_sets, eps, n, eps_rr)
    exponent = (eps * eps * num_sets * eps_rr) / (2.0 * n * (1.0 + eps / 3.0))
    return math.exp(-exponent)


def rr_size_lower_tail(num_sets: int, eps: float, n: int, eps_rr: float) -> float:
    """Corollary 1 lower tail: ``Pr[sum |R_j| <= (1-eps) T EPS]``."""
    _validate(num_sets, eps, n, eps_rr)
    exponent = (eps * eps * num_sets * eps_rr) / (2.0 * n)
    return math.exp(-exponent)


def workload_concentration(num_sets: int, eps: float, n: int, eps_rr: float) -> float:
    """Probability that one machine's workload deviates more than ``eps``.

    Union of the two Corollary 1 tails; the quantity Section III-D uses to
    argue per-machine times are asymptotically equal.
    """
    return rr_size_upper_tail(num_sets, eps, n, eps_rr) + rr_size_lower_tail(
        num_sets, eps, n, eps_rr
    )


def _validate(num_sets: int, eps: float, n: int, eps_rr: float) -> None:
    if num_sets < 1:
        raise ValueError(f"num_sets must be >= 1, got {num_sets}")
    if eps <= 0:
        raise ValueError(f"eps must be positive, got {eps}")
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if eps_rr <= 0:
        raise ValueError(f"EPS must be positive, got {eps_rr}")


@dataclass(frozen=True)
class WorkloadBalance:
    """Observed per-machine workload spread."""

    per_machine: tuple[float, ...]
    mean: float
    max_over_mean: float
    min_over_mean: float

    @property
    def relative_spread(self) -> float:
        """``(max - min) / mean``: zero means perfectly balanced."""
        return self.max_over_mean - self.min_over_mean


def empirical_workload_balance(per_machine_workloads: Sequence[float]) -> WorkloadBalance:
    """Summarise how evenly work landed across machines."""
    if not per_machine_workloads:
        raise ValueError("need at least one machine workload")
    values = tuple(float(w) for w in per_machine_workloads)
    mean = sum(values) / len(values)
    if mean == 0.0:
        return WorkloadBalance(values, 0.0, 1.0, 1.0)
    return WorkloadBalance(
        per_machine=values,
        mean=mean,
        max_over_mean=max(values) / mean,
        min_over_mean=min(values) / mean,
    )
