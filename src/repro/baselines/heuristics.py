"""Classic seed-selection heuristics (no approximation guarantee).

The paper's related work (Section V) contrasts RIS-based algorithms with
a long line of lightweight heuristics that forgo worst-case guarantees.
These serve as quality baselines in our experiments:

* :func:`max_degree` — the folk "influencers = high degree" rule;
* :func:`single_discount` — degree discounted by already-selected
  neighbors (Chen et al., KDD 2009);
* :func:`degree_discount` — the IC-aware discount of Chen et al.
  (exact form for uniform propagation probability ``p``);
* :func:`pagerank_seeds` — power-iteration PageRank on the reversed
  graph (influence flows along out-edges, so rank flows along in-edges).
"""

from __future__ import annotations

import heapq
from typing import List

import numpy as np

from ..graphs.digraph import DirectedGraph

__all__ = ["max_degree", "single_discount", "degree_discount", "pagerank_seeds"]


def _validate_k(graph: DirectedGraph, k: int) -> None:
    if not 1 <= k <= graph.num_nodes:
        raise ValueError(f"require 1 <= k <= n, got k={k}, n={graph.num_nodes}")


def max_degree(graph: DirectedGraph, k: int) -> List[int]:
    """The ``k`` nodes of largest out-degree (ties: lowest id)."""
    _validate_k(graph, k)
    degrees = graph.out_degrees()
    order = np.lexsort((np.arange(graph.num_nodes), -degrees))
    return [int(v) for v in order[:k]]


def single_discount(graph: DirectedGraph, k: int) -> List[int]:
    """Degree discount by one per selected out-neighbor.

    Each time a node is seeded, every out-neighbor's effective degree
    drops by one (the edge toward the seed no longer contributes).
    """
    _validate_k(graph, k)
    degrees = graph.out_degrees().astype(np.int64).copy()
    heap = [(-degrees[v], v) for v in range(graph.num_nodes)]
    heapq.heapify(heap)
    recorded = degrees.copy()
    seeds: List[int] = []
    selected = np.zeros(graph.num_nodes, dtype=bool)
    while len(seeds) < k and heap:
        neg_deg, node = heapq.heappop(heap)
        if selected[node]:
            continue
        if degrees[node] < recorded[node] or -neg_deg != degrees[node]:
            recorded[node] = degrees[node]
            heapq.heappush(heap, (-degrees[node], node))
            continue
        seeds.append(node)
        selected[node] = True
        for neighbor in graph.out_neighbors(node):
            degrees[neighbor] -= 1
    return seeds


def degree_discount(graph: DirectedGraph, k: int, p: float = 0.01) -> List[int]:
    """DegreeDiscountIC of Chen et al. (KDD 2009).

    For a node ``v`` with degree ``d_v`` and ``t_v`` selected in-neighbors,
    the discounted degree is ``d_v - 2 t_v - (d_v - t_v) t_v p``.  The
    formula assumes a uniform propagation probability ``p``; with the
    weighted-cascade setting it remains a serviceable heuristic (the paper
    cites it among the guarantee-free approaches).
    """
    _validate_k(graph, k)
    if not 0.0 < p < 1.0:
        raise ValueError(f"p must lie in (0, 1), got {p}")
    n = graph.num_nodes
    degrees = graph.out_degrees().astype(np.float64)
    picked_neighbors = np.zeros(n, dtype=np.float64)
    discounted = degrees.copy()
    selected = np.zeros(n, dtype=bool)
    heap = [(-discounted[v], v) for v in range(n)]
    heapq.heapify(heap)
    seeds: List[int] = []
    while len(seeds) < k and heap:
        neg_score, node = heapq.heappop(heap)
        if selected[node]:
            continue
        if -neg_score > discounted[node] + 1e-12:
            heapq.heappush(heap, (-discounted[node], node))
            continue
        seeds.append(node)
        selected[node] = True
        for neighbor in graph.out_neighbors(node):
            if selected[neighbor]:
                continue
            picked_neighbors[neighbor] += 1
            t = picked_neighbors[neighbor]
            d = degrees[neighbor]
            discounted[neighbor] = d - 2 * t - (d - t) * t * p
    return seeds


def pagerank_seeds(
    graph: DirectedGraph,
    k: int,
    damping: float = 0.85,
    iterations: int = 50,
    tolerance: float = 1e-10,
) -> List[int]:
    """Top-``k`` PageRank nodes on the *reversed* graph.

    Influence flows along out-edges, so a node is influential when many
    (recursively influential) nodes are reachable from it; ranking on the
    reversed graph captures exactly that.
    """
    _validate_k(graph, k)
    if not 0.0 < damping < 1.0:
        raise ValueError(f"damping must lie in (0, 1), got {damping}")
    n = graph.num_nodes
    rank = np.full(n, 1.0 / n)
    # Reversed graph: rank mass moves from v to u for each edge <u, v>.
    out_deg_reversed = graph.in_degrees().astype(np.float64)
    dangling = out_deg_reversed == 0
    sources = np.repeat(np.arange(n), np.diff(graph.in_indptr))
    targets = graph.in_indices
    for __ in range(iterations):
        contrib = np.where(dangling, 0.0, rank / np.maximum(out_deg_reversed, 1.0))
        incoming = np.bincount(targets, weights=contrib[sources], minlength=n)
        dangling_mass = rank[dangling].sum() / n
        updated = (1 - damping) / n + damping * (incoming + dangling_mass)
        if np.abs(updated - rank).sum() < tolerance:
            rank = updated
            break
        rank = updated
    order = np.lexsort((np.arange(n), -rank))
    return [int(v) for v in order[:k]]
