"""Baseline seed-selection algorithms for quality comparisons.

The heuristics (degree variants, PageRank) represent the guarantee-free
line of work the paper's related-work section contrasts against; CELF is
the classical Monte-Carlo greedy — the pre-RIS `(1 - 1/e - eps)`
reference implementation, feasible only on small graphs.
"""

from .celf import celf_greedy
from .heuristics import degree_discount, max_degree, pagerank_seeds, single_discount

__all__ = [
    "max_degree",
    "single_discount",
    "degree_discount",
    "pagerank_seeds",
    "celf_greedy",
]
