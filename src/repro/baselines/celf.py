"""CELF: the classical Monte-Carlo greedy with lazy evaluation.

Kempe et al.'s original `(1 - 1/e - eps)` algorithm estimates every
marginal spread with Monte-Carlo simulation; CELF (Leskovec et al., KDD
2007) makes it practical via lazy re-evaluation — submodularity means a
stale upper bound that still tops the queue only needs one re-simulation.

This is the pre-RIS reference point: asymptotically far slower than
IMM-family algorithms (it re-simulates cascades per candidate), but a
fully independent implementation path, which makes it a valuable quality
cross-check for DIIMM on small graphs.
"""

from __future__ import annotations

import heapq
from typing import List

import numpy as np

from ..diffusion.base import DiffusionModel, get_model
from ..graphs.digraph import DirectedGraph

__all__ = ["celf_greedy"]


def _marginal(
    graph: DirectedGraph,
    model: DiffusionModel,
    base: List[int],
    candidate: int,
    base_spread: float,
    num_samples: int,
    rng: np.random.Generator,
) -> float:
    total = 0.0
    seeds = base + [candidate]
    for __ in range(num_samples):
        total += model.simulate(graph, seeds, rng).size
    return total / num_samples - base_spread


def celf_greedy(
    graph: DirectedGraph,
    k: int,
    model: DiffusionModel | str = "ic",
    num_samples: int = 200,
    seed: int = 0,
) -> List[int]:
    """Select ``k`` seeds by lazy Monte-Carlo greedy (CELF).

    Parameters
    ----------
    num_samples:
        Cascades per marginal estimate; quality and cost both scale with
        it.  Only intended for small graphs.
    """
    if not 1 <= k <= graph.num_nodes:
        raise ValueError(f"require 1 <= k <= n, got k={k}, n={graph.num_nodes}")
    if isinstance(model, str):
        model = get_model(model)
    rng = np.random.default_rng(seed)

    seeds: List[int] = []
    base_spread = 0.0
    # Initial pass: marginal of every singleton.
    heap = []
    for v in range(graph.num_nodes):
        gain = _marginal(graph, model, seeds, v, base_spread, num_samples, rng)
        heap.append((-gain, 0, v))  # (neg gain, round evaluated, node)
    heapq.heapify(heap)

    while len(seeds) < k and heap:
        neg_gain, evaluated_round, node = heapq.heappop(heap)
        if evaluated_round == len(seeds):
            # Fresh estimate: greedily take it.
            seeds.append(node)
            base_spread += -neg_gain
        else:
            gain = _marginal(
                graph, model, seeds, node, base_spread, num_samples, rng
            )
            heapq.heappush(heap, (-gain, len(seeds), node))
    return seeds
