"""Setup shim: enables `python setup.py develop` in offline environments
where pip's PEP 660 editable path is unavailable (no `wheel` package)."""
from setuptools import setup

setup()
