#!/bin/bash
# Runs the final benchmark suite once the test suite's pytest exits.
while kill -0 "$1" 2>/dev/null; do sleep 10; done
cd /root/repo
python -m pytest benchmarks/ --benchmark-only 2>&1 | tee /root/repo/bench_output.txt
