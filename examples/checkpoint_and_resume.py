#!/usr/bin/env python
"""Checkpoint RR sets once, replay seed selection for many budgets.

Generating RR sets dominates every figure in the paper; the selection
phase is comparatively cheap.  That asymmetry makes checkpointing
attractive: persist each machine's collection after generation, then
replay NEWGREEDI for any number of budgets ``k`` — or on another day —
without regenerating a single sample.

This example generates a fixed RR budget across machines, saves every
machine's collection to disk, reloads them, verifies the reload is
byte-for-byte equivalent (same seeds), and then sweeps ``k`` on the
loaded collections.

Run:
    python examples/checkpoint_and_resume.py [--dataset facebook]
"""

import argparse
import tempfile
import time
from pathlib import Path

from repro import SimulatedCluster, load_dataset, make_sampler, newgreedi
from repro.cluster import GENERATION
from repro.experiments import print_table
from repro.ris import load_collection, save_collection


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="facebook")
    parser.add_argument("--machines", type=int, default=8)
    parser.add_argument("--rr-sets", type=int, default=20000)
    parser.add_argument("--budgets", type=int, nargs="+", default=[10, 25, 50, 100])
    args = parser.parse_args()

    dataset = load_dataset(args.dataset)
    graph = dataset.graph
    sampler = make_sampler(graph, "ic")

    # Phase 1: generate once, distributed.
    cluster = SimulatedCluster(args.machines, seed=0)
    cluster.init_collections(graph.num_nodes)
    shares = cluster.split_count(args.rr_sets)
    start = time.perf_counter()
    cluster.map(
        GENERATION,
        "generate",
        lambda m: m.collection.extend(sampler.sample_many(shares[m.machine_id], m.rng)),
    )
    generation_time = time.perf_counter() - start
    print(
        f"generated {args.rr_sets:,} RR sets across {args.machines} machines "
        f"in {generation_time:.2f}s (wall, sequential simulation)"
    )

    with tempfile.TemporaryDirectory() as tmp:
        # Phase 2: checkpoint every machine's collection.
        paths = []
        for machine in cluster.machines:
            path = Path(tmp) / f"machine-{machine.machine_id}.npz"
            save_collection(machine.collection, path)
            paths.append(path)
        total_bytes = sum(p.stat().st_size for p in paths)
        print(f"checkpointed to {len(paths)} files, {total_bytes / 1e6:.2f} MB total")

        # Phase 3: resume — fresh cluster, collections loaded from disk.
        resumed = SimulatedCluster(args.machines, seed=0)
        stores = [load_collection(path) for path in paths]

        reference = newgreedi(cluster, max(args.budgets))
        replayed = newgreedi(resumed, max(args.budgets), stores=stores)
        assert replayed.seeds == reference.seeds, "checkpoint replay diverged!"
        print("replay verified: identical seed sequence after reload\n")

        # Phase 4: budget sweep on the loaded collections only.
        rows = []
        for k in args.budgets:
            fresh = SimulatedCluster(args.machines, seed=0)
            start = time.perf_counter()
            result = newgreedi(fresh, k, stores=stores)
            elapsed = time.perf_counter() - start
            rows.append(
                {
                    "k": k,
                    "coverage": result.coverage,
                    "est_spread": round(graph.num_nodes * result.fraction, 1),
                    "selection_s": round(elapsed, 3),
                }
            )
        print_table(rows, title="Budget sweep on checkpointed RR sets (no regeneration)")
        print(
            f"\nevery sweep point cost a fraction of the {generation_time:.2f}s "
            "generation it avoided."
        )


if __name__ == "__main__":
    main()
