#!/usr/bin/env python
"""Influence-based applications on the distributed machinery.

The paper's conclusion claims its distributed RIS + NEWGREEDI building
blocks accelerate the greedy algorithms of a family of influence-based
problems beyond plain influence maximization.  This example runs four of
them on one dataset and prints each problem's solution profile:

* targeted IM      — only a 10% target audience counts;
* budgeted IM      — per-node costs proportional to degree, fixed budget;
* seed minimization — fewest seeds certifying a required reach;
* profit maximization — reach minus seeding costs, unconstrained size.

Run:
    python examples/influence_applications.py [--dataset facebook]
"""

import argparse

import numpy as np

from repro import load_dataset
from repro.applications import (
    budgeted_influence_maximization,
    profit_maximization,
    seed_minimization,
    targeted_influence_maximization,
)
from repro.experiments import print_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="facebook")
    parser.add_argument("--machines", type=int, default=8)
    parser.add_argument("--rr-sets", type=int, default=20000)
    parser.add_argument("--k", type=int, default=20)
    args = parser.parse_args()

    dataset = load_dataset(args.dataset)
    graph = dataset.graph
    n = graph.num_nodes
    rng = np.random.default_rng(0)
    print(f"dataset: {dataset.name} (n={n:,}), {args.machines} machines\n")

    rows = []

    targets = rng.choice(n, size=n // 10, replace=False)
    targeted = targeted_influence_maximization(
        graph, targets, k=args.k, num_machines=args.machines,
        num_rr_sets=args.rr_sets,
    )
    rows.append(
        {
            "application": "targeted IM",
            "constraint": f"k={args.k}, |T|={len(targets)}",
            "seeds": len(targeted.seeds),
            "objective": round(targeted.objective, 1),
            "objective_meaning": "expected targeted reach",
        }
    )

    # Seeding celebrities costs more: cost grows with out-degree.
    costs = 1.0 + graph.out_degrees() / max(graph.out_degrees().max(), 1) * 9.0
    budgeted = budgeted_influence_maximization(
        graph, costs, budget=25.0, num_machines=args.machines,
        num_rr_sets=args.rr_sets,
    )
    rows.append(
        {
            "application": "budgeted IM",
            "constraint": f"budget=25.0 (spent {budgeted.params['spent']})",
            "seeds": len(budgeted.seeds),
            "objective": round(budgeted.objective, 1),
            "objective_meaning": "expected reach",
        }
    )

    required = n * 0.2
    minimized = seed_minimization(
        graph, required_spread=required, num_machines=args.machines,
        num_rr_sets=args.rr_sets,
    )
    rows.append(
        {
            "application": "seed minimization",
            "constraint": f"required reach >= {required:.0f}",
            "seeds": len(minimized.seeds),
            "objective": round(minimized.objective, 1),
            "objective_meaning": "certified reach",
        }
    )

    profit = profit_maximization(
        graph, costs, num_machines=args.machines, num_rr_sets=args.rr_sets
    )
    rows.append(
        {
            "application": "profit maximization",
            "constraint": "unconstrained (degree-priced seeds)",
            "seeds": len(profit.seeds),
            "objective": round(profit.objective, 1),
            "objective_meaning": "reach - seeding cost",
        }
    )

    print_table(rows, title="Influence-based applications (distributed greedy)")
    print(
        "\nAll four reuse the same machinery: distributed RR collections, "
        "master-side marginals, NEWGREEDI map/reduce decrement rounds."
    )


if __name__ == "__main__":
    main()
