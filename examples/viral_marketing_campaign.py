#!/usr/bin/env python
"""Viral marketing campaign planning — the paper's motivating scenario.

An advertiser has the budget to recruit ``k`` seed users on a social
platform and wants to maximise the expected campaign reach.  This example

1. sweeps the seed budget and reports the marginal reach of each increment
   (diminishing returns — the submodularity the theory rests on),
2. compares the principled DIIMM seeds against two folk heuristics
   (highest-degree users, random users) under Monte-Carlo evaluation, and
3. contrasts the IC and LT diffusion assumptions on the same budget.

Run:
    python examples/viral_marketing_campaign.py [--dataset googleplus] [--budget 50]
"""

import argparse

import numpy as np

from repro import diimm, evaluate_seeds, load_dataset
from repro.experiments import print_table


def reach(graph, seeds, model, samples, seed=0):
    estimate = evaluate_seeds(graph, seeds, model, samples, np.random.default_rng(seed))
    return estimate.mean


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="googleplus")
    parser.add_argument("--budget", type=int, default=50)
    parser.add_argument("--machines", type=int, default=16)
    parser.add_argument("--eps", type=float, default=0.5)
    parser.add_argument("--mc-samples", type=int, default=400)
    args = parser.parse_args()

    dataset = load_dataset(args.dataset)
    graph = dataset.graph
    print(
        f"campaign on {dataset.name}: n={dataset.num_nodes:,} users, "
        f"budget {args.budget} seeds\n"
    )

    # 1. Budget sweep: expected reach at increasing seed budgets.
    result = diimm(graph, args.budget, args.machines, eps=args.eps, model="ic")
    budget_rows = []
    for cut in sorted({max(args.budget // 10, 1), args.budget // 4, args.budget // 2, args.budget}):
        prefix = result.seeds[:cut]
        budget_rows.append(
            {
                "seeds": cut,
                "expected_reach": round(reach(graph, prefix, "ic", args.mc_samples), 1),
            }
        )
    for prev, row in zip(budget_rows, budget_rows[1:]):
        added = row["seeds"] - prev["seeds"]
        row["reach_per_extra_seed"] = round(
            (row["expected_reach"] - prev["expected_reach"]) / added, 2
        )
    print_table(budget_rows, title="Budget sweep (IC model) — diminishing returns")

    # 2. Strategy comparison at the full budget.
    rng = np.random.default_rng(1)
    degree_seeds = np.argsort(graph.out_degrees())[-args.budget :].tolist()
    random_seeds = rng.choice(graph.num_nodes, size=args.budget, replace=False).tolist()
    strategy_rows = [
        {
            "strategy": name,
            "expected_reach": round(reach(graph, seeds, "ic", args.mc_samples), 1),
        }
        for name, seeds in (
            ("DIIMM (1-1/e-eps guarantee)", result.seeds),
            ("top out-degree", degree_seeds),
            ("random users", random_seeds),
        )
    ]
    print()
    print_table(strategy_rows, title=f"Strategy comparison at budget {args.budget}")

    # 3. Diffusion-model sensitivity: plan under LT as well.
    lt_result = diimm(graph, args.budget, args.machines, eps=args.eps, model="lt")
    overlap = len(set(result.seeds) & set(lt_result.seeds))
    model_rows = [
        {
            "model": "IC",
            "expected_reach": round(reach(graph, result.seeds, "ic", args.mc_samples), 1),
        },
        {
            "model": "LT",
            "expected_reach": round(
                reach(graph, lt_result.seeds, "lt", args.mc_samples), 1
            ),
        },
    ]
    print()
    print_table(model_rows, title="Diffusion-model sensitivity")
    print(f"\nseed overlap between IC and LT plans: {overlap}/{args.budget}")


if __name__ == "__main__":
    main()
