#!/usr/bin/env python
"""Element-distributed vs set-distributed maximum coverage (paper Fig 10).

Casts a social graph as a maximum-coverage instance (node u's set = u's
neighborhood; goal: k users with the largest neighbor union) and compares

* the sequential lazy greedy (quality reference and speed baseline),
* NEWGREEDI — element-distributed, exact greedy quality by Lemma 2,
* GREEDI — set-distributed composable core-sets with kappa = k,
* RANDGREEDI — GREEDI over a uniformly random partition,

reporting simulated running time, communication traffic and coverage.

Run:
    python examples/max_coverage_comparison.py [--dataset livejournal] [--k 50]
"""

import argparse
import time

import numpy as np

from repro import (
    CoverageInstance,
    SimulatedCluster,
    greedi,
    greedy_max_coverage,
    load_dataset,
    newgreedi,
    randgreedi,
    shared_memory_server,
)
from repro.experiments import print_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="livejournal")
    parser.add_argument("--k", type=int, default=50)
    parser.add_argument("--cores", type=int, nargs="+", default=[4, 16, 64])
    args = parser.parse_args()

    dataset = load_dataset(args.dataset)
    instance = CoverageInstance.from_graph(dataset.graph)
    print(
        f"coverage instance from {dataset.name}: {instance.num_nodes:,} sets over "
        f"{instance.num_sets:,} elements (total size {instance.total_size:,})\n"
    )

    start = time.perf_counter()
    sequential = greedy_max_coverage([instance], args.k)
    sequential_time = time.perf_counter() - start
    print(
        f"sequential greedy: coverage {sequential.coverage:,} "
        f"in {sequential_time:.2f}s\n"
    )

    rows = []
    for cores in args.cores:
        # NEWGREEDI: elements scattered uniformly, as distributed RIS would.
        parts = instance.split(cores, rng=np.random.default_rng(cores))
        cluster = SimulatedCluster(cores, network=shared_memory_server(), seed=0)
        new_result = newgreedi(cluster, args.k, stores=parts)
        rows.append(
            {
                "algorithm": "NEWGREEDI",
                "cores": cores,
                "time_s": round(cluster.metrics.total_time, 4),
                "speedup": round(sequential_time / cluster.metrics.total_time, 2),
                "coverage": new_result.coverage,
                "coverage_ratio": round(new_result.coverage / sequential.coverage, 4),
                "traffic_mb": round(cluster.metrics.total_bytes / 1e6, 3),
            }
        )

        for name, runner in (("GREEDI", greedi), ("RANDGREEDI", randgreedi)):
            cluster = SimulatedCluster(cores, network=shared_memory_server(), seed=0)
            if name == "GREEDI":
                result = runner(cluster, instance, args.k)
            else:
                result = runner(
                    cluster, instance, args.k, rng=np.random.default_rng(cores)
                )
            rows.append(
                {
                    "algorithm": name,
                    "cores": cores,
                    "time_s": round(cluster.metrics.total_time, 4),
                    "speedup": round(
                        sequential_time / cluster.metrics.total_time, 2
                    ),
                    "coverage": result.coverage,
                    "coverage_ratio": round(
                        result.coverage / sequential.coverage, 4
                    ),
                    "traffic_mb": round(cluster.metrics.total_bytes / 1e6, 3),
                }
            )

    print_table(rows, title=f"maximum coverage, k={args.k}")
    print(
        "\nNEWGREEDI's coverage ratio is always exactly 1.0 (Lemma 2); the "
        "core-set baselines may fall below it and ship far more data."
    )


if __name__ == "__main__":
    main()
