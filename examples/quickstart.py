#!/usr/bin/env python
"""Quickstart: distributed influence maximization in a dozen lines.

Loads the Facebook-like dataset (4,000 nodes, weighted-cascade
probabilities), runs DIIMM on a simulated 16-machine cluster, and
validates the selected seeds with forward Monte-Carlo simulation.

Run:
    python examples/quickstart.py [--dataset facebook] [--k 25] [--machines 16]
"""

import argparse

import numpy as np

from repro import diimm, evaluate_seeds, load_dataset


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="facebook", help="dataset stand-in name")
    parser.add_argument("--k", type=int, default=25, help="seed-set size")
    parser.add_argument("--machines", type=int, default=16, help="simulated machines")
    parser.add_argument("--eps", type=float, default=0.5, help="approximation slack")
    parser.add_argument("--mc-samples", type=int, default=500, help="validation cascades")
    args = parser.parse_args()

    dataset = load_dataset(args.dataset)
    print(f"dataset: {dataset.name} (n={dataset.num_nodes:,}, m={dataset.graph.num_edges:,})")

    result = diimm(
        dataset.graph,
        k=args.k,
        num_machines=args.machines,
        eps=args.eps,
    )
    print(f"selected {len(result.seeds)} seeds, first five: {result.seeds[:5]}")
    print(f"RR sets generated: {result.num_rr_sets:,} (total size {result.total_rr_size:,})")
    print(f"RIS spread estimate: {result.estimated_spread:,.0f} nodes")

    breakdown = result.breakdown
    print(
        "simulated parallel time: "
        f"{breakdown['total']:.2f}s (generation {breakdown['generation']:.2f}s, "
        f"computation {breakdown['computation']:.2f}s, "
        f"communication {breakdown['communication']:.3f}s)"
    )

    validation = evaluate_seeds(
        dataset.graph, result.seeds, "ic", args.mc_samples, np.random.default_rng(0)
    )
    low, high = validation.ci()
    in_ci = low <= result.estimated_spread <= high
    close = abs(validation.mean - result.estimated_spread) / validation.mean < 0.1
    verdict = "consistent with" if in_ci or close else "check against"
    print(
        f"Monte-Carlo validation: {validation.mean:,.0f} nodes "
        f"(95% CI [{low:,.0f}, {high:,.0f}]) — {verdict} the RIS estimate"
    )


if __name__ == "__main__":
    main()
