#!/usr/bin/env python
"""Cluster scaling study: how DIIMM's running time splits and shrinks.

Reproduces the shape of the paper's Figs 5-6 on one dataset: sweeps the
machine count, prints the generation / computation / communication
breakdown, and finishes with a *real* multiprocessing cross-check — RR-set
generation fanned out over actual OS processes — so the simulated speedups
can be compared against physical ones on this machine.

Run:
    python examples/cluster_scaling_study.py [--dataset twitter] [--network cluster]
"""

import argparse
import time

import numpy as np

from repro import gigabit_cluster, load_dataset, shared_memory_server
from repro.cluster import run_generation_pool
from repro.experiments import print_table
from repro.experiments.scaling import ScalingConfig, run_scaling


def real_multiprocessing_check(graph, num_rr_sets: int, processes: int) -> None:
    """Generate the same batch serially and in parallel; print wall times."""
    counts = [num_rr_sets // processes] * processes

    start = time.perf_counter()
    run_generation_pool(
        graph, "ic", "bfs", [num_rr_sets], [np.random.default_rng(0)], processes=1
    )
    serial = time.perf_counter() - start

    start = time.perf_counter()
    run_generation_pool(
        graph,
        "ic",
        "bfs",
        counts,
        [np.random.default_rng(i) for i in range(processes)],
        processes=processes,
    )
    parallel = time.perf_counter() - start

    print(
        f"\nreal multiprocessing cross-check ({num_rr_sets} RR sets, "
        f"{processes} processes): serial {serial:.2f}s, parallel {parallel:.2f}s, "
        f"speedup {serial / parallel:.2f}x"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="twitter")
    parser.add_argument(
        "--network",
        choices=("cluster", "server"),
        default="cluster",
        help="1 Gbps cluster or shared-memory multi-core server",
    )
    parser.add_argument("--k", type=int, default=50)
    parser.add_argument("--eps", type=float, default=0.5)
    parser.add_argument(
        "--machines", type=int, nargs="+", default=[1, 2, 4, 8, 16]
    )
    parser.add_argument("--model", choices=("ic", "lt"), default="ic")
    parser.add_argument(
        "--skip-multiprocessing",
        action="store_true",
        help="skip the real-process cross-check",
    )
    args = parser.parse_args()

    network_factory = gigabit_cluster if args.network == "cluster" else shared_memory_server
    config = ScalingConfig(
        label=f"scaling-{args.dataset}-{args.model}",
        datasets=[args.dataset],
        machine_counts=tuple(args.machines),
        model=args.model,
        network_factory=network_factory,
        k=args.k,
        eps=args.eps,
    )
    rows = run_scaling(config)
    print_table(
        rows,
        title=(
            f"DIIMM scaling on {args.dataset} ({args.model.upper()} model, "
            f"{args.network} network)"
        ),
    )

    if not args.skip_multiprocessing:
        graph = load_dataset(args.dataset).graph
        processes = min(4, max(args.machines))
        real_multiprocessing_check(graph, num_rr_sets=4000, processes=processes)


if __name__ == "__main__":
    main()
